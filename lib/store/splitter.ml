module Config = struct
  type t = {
    min_delta : int;
    imbalance : float;
    merge_below : float;
    max_buckets : int;
    queue_weight : float;
    alpha : float;
  }

  let default =
    { min_delta = 32; imbalance = 1.6; merge_below = 1.15; max_buckets = 8;
      queue_weight = 4.0; alpha = 0.5 }
end

type advice =
  | Split of { from_ : int; to_ : int; buckets : int list }
  | Merge of { from_ : int; to_ : int; buckets : int list }
  | Steady

type t = {
  st : Store.t;
  config : Config.t;
  load : float array;
  mutable prev : int array;
  gauges : Lvm_obs.Counter.counter array;
}

let create ?(config = Config.default) st =
  let shards = (Store.config st).Store.Config.shards in
  let ctx = Lvm_vm.Kernel.obs (Store.kernel st) in
  { st; config;
    load = Array.make shards 0.0;
    prev = Store.bucket_write_counts st;
    gauges =
      Array.init shards (fun s ->
          Lvm_obs.Ctx.counter ctx (Printf.sprintf "store.shard%d.load" s)) }

let load t s = t.load.(s)

(* Each advise round folds the bucket-write deltas since the previous
   round (plus the driver's queue depths) into per-shard load EWMAs,
   publishes them as gauges, and compares the hottest shard against the
   fleet average. *)
let advise ?queue_depths t =
  let cfg = Store.config t.st in
  let shards = cfg.Store.Config.shards in
  let counts = Store.bucket_write_counts t.st in
  let deltas =
    Array.mapi
      (fun b c ->
        (* A recovery resets the store's counters; clamping keeps a
           stale snapshot from producing negative load. *)
        max 0 (c - (if b < Array.length t.prev then t.prev.(b) else 0)))
      counts
  in
  t.prev <- counts;
  let route = Store.route_table t.st in
  let sample = Array.make shards 0.0 in
  Array.iteri
    (fun b d -> sample.(route.(b)) <- sample.(route.(b)) +. float_of_int d)
    deltas;
  (match queue_depths with
  | Some q ->
    Array.iteri
      (fun s d ->
        if s < shards then
          sample.(s) <- sample.(s) +. (t.config.queue_weight *. float_of_int d))
      q
  | None -> ());
  Array.iteri
    (fun s v ->
      t.load.(s) <-
        ((1.0 -. t.config.alpha) *. t.load.(s)) +. (t.config.alpha *. v);
      Lvm_obs.Counter.set t.gauges.(s) (int_of_float t.load.(s)))
    sample;
  if shards < 2 || Store.active_move t.st <> None then Steady
  else begin
    let total_delta = Array.fold_left ( + ) 0 deltas in
    let hot = ref 0 and cold = ref 0 in
    for s = 1 to shards - 1 do
      if t.load.(s) > t.load.(!hot) then hot := s;
      if t.load.(s) < t.load.(!cold) then cold := s
    done;
    let avg = Array.fold_left ( +. ) 0.0 t.load /. float_of_int shards in
    if
      total_delta >= t.config.min_delta
      && avg > 0.0
      && t.load.(!hot) >= t.config.imbalance *. avg
      && t.load.(!hot) > t.load.(!cold) +. 1.0
    then begin
      (* Peel the hot shard's hottest buckets off — never its last
         bucket. The move is sized in this round's write-delta units
         (the EWMAs mix in queue depths, a different scale): enough
         traffic that the hot shard would sit at the fleet average,
         but never more than would push the recipient over it —
         otherwise the hottest buckets travel as a group and the
         hotspot merely relocates, ping-ponging between shards. *)
      match Store.shard_buckets t.st !hot with
      | [] | [ _ ] -> Steady
      | owned ->
        let keep_at_least_one = List.length owned - 1 in
        let scored =
          List.sort
            (fun (d1, b1) (d2, b2) -> compare (d2, b1) (d1, b2))
            (List.map (fun b -> (deltas.(b), b)) owned)
        in
        let shard_delta s =
          let acc = ref 0.0 in
          Array.iteri
            (fun b d -> if route.(b) = s then acc := !acc +. float_of_int d)
            deltas;
          !acc
        in
        let avg_delta = float_of_int total_delta /. float_of_int shards in
        let target =
          Float.min
            (shard_delta !hot -. avg_delta)
            (avg_delta -. shard_delta !cold)
        in
        let rec pick acc cum n = function
          | [] -> List.rev acc
          | _ when n >= t.config.max_buckets || n >= keep_at_least_one
                   || cum >= target ->
            List.rev acc
          | (d, _) :: _ when d = 0 ->
            (* Sorted hottest-first: the rest carry no traffic, and
               moving them shifts no load. *)
            List.rev acc
          | (d, b) :: rest -> pick (b :: acc) (cum +. float_of_int d) (n + 1) rest
        in
        if target <= 0.0 then Steady
        else
          (match pick [] 0.0 0 scored with
          | [] -> Steady
          | picked -> Split { from_ = !hot; to_ = !cold; buckets = picked })
    end
    else if avg > 0.0 && t.load.(!hot) <= t.config.merge_below *. avg then begin
      (* Calm seas: undo stale splits by sending one displaced group of
         buckets back to its default owner, shrinking route entropy. *)
      let displaced = ref [] in
      Array.iteri
        (fun b s ->
          if s <> Store.default_owner t.st b then displaced := (s, b) :: !displaced)
        route;
      match List.rev !displaced with
      | [] -> Steady
      | (s, b) :: _ ->
        let home = Store.default_owner t.st b in
        let group =
          List.filter_map
            (fun (s', b') ->
              if s' = s && Store.default_owner t.st b' = home then Some b'
              else None)
            (List.rev !displaced)
        in
        Merge { from_ = s; to_ = home; buckets = group }
    end
    else Steady
  end
