(** Failure-atomic snapshots over the hardware log (beyond the paper).

    The FAMS pattern (failure-atomic [msync]) lets an application mutate
    a mapped region with {e plain writes} — no transaction bracketing, no
    per-write [set_range] bookkeeping — and make the accumulated
    modification set durable atomically with one call. What a software
    FAMS implements with soft-dirty page tracking and a redo journal,
    this machine already records in hardware: the logger captures every
    store into the region's log segment, and the second-level cache's
    deferred-copy tables track the modified lines. {!snapshot} reads that
    modification set ({!Lvm_vm.Kernel.dirty_spans}), writes it to the
    write-ahead log as redo records sealed by a {e snapshot boundary}
    record, folds it into the committed image, and recycles the hardware
    log's extents for the next epoch.

    Atomicity: the boundary record is the commit marker. Recovery replays
    a snapshot's redo records only when its boundary reached the disk
    intact; a torn snapshot — crash before or during the boundary's
    force — is truncated back to the last durable boundary, idempotently
    (see {!Lvm_rvm.Ramdisk.Snapshot}). With {!Config.group} [> 1],
    boundary forces batch exactly like RLVM group commit: a crash rolls
    back to the last {e forced} boundary.

    Every entry point returns [('a, Lvm.Lvm_error.t) result]; kernel
    errors surface as [Error (Vm _)] — notably
    [Vm (Log_exhausted _)] from {!write_word} as the backpressure
    signal. Injected crash faults are never caught into a result. *)

type t

module Config : sig
  type t = {
    log_pages : int;  (** Hardware-log provision, pages. *)
    max_log_pages : int option;
        (** Backpressure ceiling; [None] means [2 * log_pages]. *)
    group : int;
        (** Snapshot boundaries per WAL force (group commit). *)
  }

  val default : t
  (** [{ log_pages = 32; max_log_pages = None; group = 1 }]. *)
end

val map :
  Config.t -> Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int ->
  (t, Lvm.Lvm_error.t) result
(** Map a logged, snapshottable region of [size] bytes (a positive word
    multiple) at a fresh base address: working segment deferred-copied
    from a committed image, hardware log with an extent ring, RAM-disk
    WAL. The region starts all-zero and logging-enabled. *)

(** {1 Mutation} *)

val read_word : t -> off:int -> (int, Lvm.Lvm_error.t) result

val write_word : t -> off:int -> int -> (unit, Lvm.Lvm_error.t) result
(** A plain store: no transaction needs to be open and no per-write
    bookkeeping is charged — the hardware tracks the modification set.
    Backpressure runs first: if the store's log record cannot be made to
    fit under [max_log_pages], returns [Error (Vm (Log_exhausted _))]
    before issuing the write. *)

(** {1 Snapshots} *)

type report = {
  snap : int;  (** Snapshot id (monotonic from 1). *)
  spans : int;  (** Coalesced dirty spans persisted. *)
  bytes : int;  (** Payload bytes written to the WAL. *)
  log_records : int;  (** Hardware-log records sealed with the epoch. *)
  forced : bool;
      (** The boundary was forced to disk (always true at group 1). *)
  absorbed : bool;
      (** The logger overflowed into the default page during the epoch.
          The snapshot is still exact — redo comes from the dirty-line
          tracking, not the log records — but log-derived diagnostics
          under-count. *)
}

val snapshot : t -> (report, Lvm.Lvm_error.t) result
(** Atomically persist everything written since the previous snapshot
    (or since {!map}): enumerate the dirty spans, append them as WAL redo
    records under a fresh snapshot id, seal them with the boundary
    record, note the commit with the group batcher, fold the spans into
    the committed image, reset the deferred-copy state and recycle the
    hardware log's extents. An empty modification set still writes a
    boundary (an empty snapshot is a valid, durable state). *)

val flush : t -> (unit, Lvm.Lvm_error.t) result
(** Force any unforced snapshot boundaries (group commit tail), then
    truncate the WAL if it is past threshold. *)

val recover : t -> (Lvm_rvm.Ramdisk.recovery, Lvm.Lvm_error.t) result
(** Crash recovery: recover the RAM disk (truncating any torn snapshot
    back to the last durable boundary), reload both images from the
    recovered state, clear the hardware log and re-enable logging.
    Idempotent. Unwritten epochs die; snapshot ids stay monotonic. *)

val report_to_string : report -> string

(** {1 Accessors} *)

val kernel : t -> Lvm_vm.Kernel.t
val base : t -> int
(** Base virtual address of the mapped region. *)

val size : t -> int
val disk : t -> Lvm_rvm.Ramdisk.t
val log : t -> Lvm_log.t
val log_segment : t -> Lvm_vm.Segment.t
val group : t -> int
val pending_snapshots : t -> int
(** Boundaries noted but not yet forced (0 at group 1). *)

val snapshots : t -> int
(** Snapshots taken since {!map} (crashes included). *)
