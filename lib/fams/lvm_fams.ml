open Lvm_machine
open Lvm_vm
module Ramdisk = Lvm_rvm.Ramdisk
module Rvm_costs = Lvm_rvm.Rvm_costs
module Lvm_error = Lvm.Lvm_error

module Config = struct
  type t = {
    log_pages : int;
    max_log_pages : int option;
    group : int;
  }

  let default = { log_pages = 32; max_log_pages = None; group = 1 }
end

type t = {
  k : Kernel.t;
  space : Address_space.t;
  working : Segment.t;
  committed : Segment.t;
  region : Region.t;
  ls : Segment.t;
  log : Lvm_log.t;
  base : int;
  size : int;
  disk : Ramdisk.t;
  batcher : Lvm_log.Batcher.batcher;
  max_log_pages : int;
  mutable next_snap : int;
  mutable epoch_absorbed_base : int;
  c_snapshots : Lvm_obs.Counter.counter;
  h_spans : Lvm_obs.Histogram.t;
}

type report = {
  snap : int;
  spans : int;
  bytes : int;
  log_records : int;
  forced : bool;
  absorbed : bool;
}

let report_to_string r =
  Printf.sprintf "snap=%d spans=%d bytes=%d log_records=%d forced=%b%s"
    r.snap r.spans r.bytes r.log_records r.forced
    (if r.absorbed then " absorbed" else "")

let map (config : Config.t) k space ~size =
  Lvm_error.guard @@ fun () ->
  let { Config.log_pages; max_log_pages; group } = config in
  if size <= 0 || size mod Addr.word_size <> 0 then
    Error.raise_
      (Error.Invalid
         { op = "Fams.map"; reason = "size must be a positive word multiple" });
  if log_pages <= 0 then
    Error.raise_
      (Error.Out_of_range
         { op = "Fams.map"; what = "log_pages"; value = log_pages });
  if group < 1 then
    Error.raise_
      (Error.Out_of_range { op = "Fams.map"; what = "group"; value = group });
  let max_log_pages =
    match max_log_pages with Some m -> max m log_pages | None -> 2 * log_pages
  in
  let working = Kernel.create_segment k ~size in
  let committed = Kernel.create_segment k ~size in
  Kernel.declare_source k ~dst:working ~src:committed ~offset:0;
  let region = Kernel.create_region k working in
  let log = Lvm_log.create k ~size:(log_pages * Addr.page_size) in
  let ls = Lvm_log.segment log in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k space region in
  let disk = Ramdisk.create k ~size in
  (* Group commit: with [group > 1] the WAL tail is volatile until the
     batcher forces it — a crash rolls back to the last forced snapshot
     boundary, the deal group commit makes. *)
  Ramdisk.set_volatile_tail disk (group > 1);
  let batcher =
    Lvm_log.Batcher.create ~obs:(Kernel.obs k) ~group
      ~force:(fun () -> Ramdisk.wal_force disk)
      ()
  in
  let obs = Kernel.obs k in
  { k; space; working; committed; region; ls; log; base; size; disk; batcher;
    max_log_pages; next_snap = 1; epoch_absorbed_base = 0;
    c_snapshots = Lvm_obs.Ctx.counter obs "fams.snapshots";
    h_spans =
      Lvm_obs.Ctx.histogram obs ~name:"fams.snapshot_spans"
        ~bounds:(Lvm_obs.Histogram.pow2_bounds ~max_exp:10) }

let kernel t = t.k
let base t = t.base
let size t = t.size
let disk t = t.disk
let log t = t.log
let log_segment t = t.ls
let group t = Lvm_log.Batcher.group t.batcher
let pending_snapshots t = Lvm_log.Batcher.pending t.batcher
let snapshots t = t.next_snap - 1

let check_off t off =
  if off < 0 || off + 4 > t.size then
    Error.raise_ (Error.Out_of_segment { segment = Segment.id t.working; off })

let read_word t ~off =
  Lvm_error.guard @@ fun () ->
  check_off t off;
  Kernel.read_word t.k t.space (t.base + off)

(* A FAMS write is a plain store: no per-write bookkeeping charge (the
   hardware log and the second-level cache track the modification set).
   Only backpressure runs first, so a store whose log record would not
   fit surfaces as a typed [Log_exhausted] before it is issued. *)
let write_word t ~off v =
  Lvm_error.guard @@ fun () ->
  check_off t off;
  Lvm_log.reserve t.log ~bytes:Lvm_machine.Log_record.bytes
    ~max_pages:t.max_log_pages;
  Kernel.write_word t.k t.space (t.base + off) v

let words bytes = (bytes + 3) / 4

let read_span t ~off ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i
      (Char.chr (Kernel.seg_read_raw t.k t.working ~off:(off + i) ~size:1))
  done;
  b

let snapshot t =
  Lvm_error.guard @@ fun () ->
  Kernel.sync_log t.k t.ls;
  (* Absorption lost hardware log records, but not the modification set:
     the snapshot's redo comes from the second-level cache's per-line
     dirty tracking, so the snapshot is still exact. Record that it
     happened and clear the condition. *)
  let absorbed =
    Segment.absorbing t.ls
    || Segment.absorbed_crossings t.ls > t.epoch_absorbed_base
  in
  let log_records =
    match Lvm_log.stream_version t.log with
    | Log_record.V0 -> Segment.write_pos t.ls / Lvm_machine.Log_record.bytes
    | Log_record.V1 -> Lvm.Log_reader.record_count t.k t.ls
  in
  let snap = t.next_snap in
  t.next_snap <- snap + 1;
  let spans =
    List.filter_map
      (fun (off, len) ->
        if off >= t.size then None
        else Some (off, min len (t.size - off)))
      (Kernel.dirty_spans t.k t.working)
  in
  let bytes = ref 0 in
  let charge_span len =
    (* building the redo record: RVM's per-record overhead plus the
       copy out of the working image *)
    Kernel.compute t.k
      (Rvm_costs.redo_record_overhead
       + (words len * Rvm_costs.redo_copy_per_word));
    bytes := !bytes + len
  in
  (match Lvm_log.stream_version t.log with
  | Log_record.V0 ->
    List.iter
      (fun (off, len) ->
        charge_span len;
        Ramdisk.wal_append t.disk
          (Ramdisk.Data { txn = snap; off; bytes = read_span t ~off ~len }))
      spans
  | Log_record.V1 ->
    (* Encoded redo: the whole snapshot's dirty spans as one compact V1
       stream of word records — sequential words of a span share the
       snapshot id as timestamp, so they collapse into runs. Spans that
       are not word-shaped (only possible at the clipped segment tail)
       fall back to plain [Data] records. *)
    let records = ref [] in
    List.iter
      (fun (off, len) ->
        charge_span len;
        if off land 3 = 0 && len land 3 = 0 then
          for i = 0 to (len / 4) - 1 do
            let woff = off + (4 * i) in
            records :=
              { Log_record.addr = woff;
                value = Kernel.seg_read_raw t.k t.working ~off:woff ~size:4;
                size = 4; pre_image = false; timestamp = snap }
              :: !records
          done
        else
          Ramdisk.wal_append t.disk
            (Ramdisk.Data { txn = snap; off; bytes = read_span t ~off ~len }))
      spans;
    match List.rev !records with
    | [] -> ()
    | rs ->
      Ramdisk.wal_append t.disk
        (Ramdisk.Encoded
           { txn = snap; payload = Log_record.Codec.encode_stream rs }));
  (* The boundary record commits the snapshot: recovery applies a
     snapshot's Data records only when its boundary reached the disk. *)
  Ramdisk.wal_append t.disk (Ramdisk.Snapshot { snap });
  Lvm_log.Batcher.note_commit t.batcher;
  (* Fold the modification set into the committed image, then reset the
     deferred-copy state: the committed image now holds the new values,
     so re-pointing every line back at its source preserves content. *)
  List.iter
    (fun (off, len) ->
      for i = 0 to len - 1 do
        Kernel.seg_write_raw t.k t.committed ~off:(off + i) ~size:1
          (Kernel.seg_read_raw t.k t.working ~off:(off + i) ~size:1)
      done)
    spans;
  Kernel.reset_deferred_segment t.k t.working;
  if Segment.absorbing t.ls then begin
    Kernel.set_logging_enabled t.k t.region false;
    Segment.set_absorbing t.ls false;
    Kernel.set_logging_enabled t.k t.region true
  end;
  (* The hardware log's job for this epoch is done: seal the whole span,
     recycling every full extent. *)
  ignore (Lvm_log.seal t.log);
  t.epoch_absorbed_base <- Segment.absorbed_crossings t.ls;
  let forced = Lvm_log.Batcher.pending t.batcher = 0 in
  (* WAL truncation applies records to the image, so it must not run
     past an unforced tail. *)
  if forced && Ramdisk.should_truncate t.disk then Ramdisk.truncate t.disk;
  Lvm_obs.Counter.incr t.c_snapshots;
  Lvm_obs.Histogram.observe t.h_spans (List.length spans);
  { snap; spans = List.length spans; bytes = !bytes; log_records; forced;
    absorbed }

let flush t =
  Lvm_error.guard @@ fun () ->
  Lvm_log.Batcher.flush t.batcher;
  if Ramdisk.should_truncate t.disk then Ramdisk.truncate t.disk

let recover t =
  Lvm_error.guard @@ fun () ->
  Lvm_log.Batcher.reset t.batcher;
  let image, rep = Ramdisk.recover t.disk in
  Kernel.set_logging_enabled t.k t.region false;
  (if Segment.absorbing t.ls then Segment.set_absorbing t.ls false);
  Lvm_log.truncate_suffix t.log ~new_end:0;
  for off = 0 to t.size - 1 do
    let byte = Char.code (Bytes.get image off) in
    Kernel.seg_write_raw t.k t.committed ~off ~size:1 byte;
    Kernel.seg_write_raw t.k t.working ~off ~size:1 byte
  done;
  Kernel.reset_deferred_segment t.k t.working;
  Kernel.set_logging_enabled t.k t.region true;
  t.epoch_absorbed_base <- Segment.absorbed_crossings t.ls;
  rep
