type t =
  | Segmentation_fault of { space : int; vaddr : int }
  | Unaligned_access of { vaddr : int; size : int }
  | Bad_access_size of { size : int }
  | Out_of_segment of { segment : int; off : int }
  | Page_not_resident of { op : string; segment : int; page : int }
  | No_backing_store of { op : string; segment : int }
  | Not_a_log_segment of { op : string; segment : int }
  | Page_out_of_range of { segment : int; page : int; pages : int }
  | Log_exhausted of { segment : int; pos : int; capacity : int }
  | Log_capacity of { op : string; requested : int; capacity : int }
  | Out_of_range of { op : string; what : string; value : int }
  | Invalid of { op : string; reason : string }

exception Lvm_error of t

let raise_ e = raise (Lvm_error e)

let to_string = function
  | Segmentation_fault { space; vaddr } ->
    Printf.sprintf "segmentation fault: space %d, vaddr 0x%x" space vaddr
  | Unaligned_access { vaddr; size } ->
    Printf.sprintf "unaligned access: vaddr 0x%x, size %d" vaddr size
  | Bad_access_size { size } ->
    Printf.sprintf "access size must be 1, 2 or 4 (got %d)" size
  | Out_of_segment { segment; off } ->
    Printf.sprintf "offset %d outside segment %d" off segment
  | Page_not_resident { op; segment; page } ->
    Printf.sprintf "%s: page %d of segment %d not resident" op page segment
  | No_backing_store { op; segment } ->
    Printf.sprintf "%s: segment %d has no backing store" op segment
  | Not_a_log_segment { op; segment } ->
    Printf.sprintf "%s: segment %d is not a log segment" op segment
  | Page_out_of_range { segment; page; pages } ->
    Printf.sprintf "page %d outside segment %d (%d pages)" page segment pages
  | Log_exhausted { segment; pos; capacity } ->
    Printf.sprintf "log segment %d exhausted: write position %d of %d bytes"
      segment pos capacity
  | Log_capacity { op; requested; capacity } ->
    Printf.sprintf "%s: %d bytes of log traffic exceed the %d-byte log"
      op requested capacity
  | Out_of_range { op; what; value } ->
    Printf.sprintf "%s: %s out of range (%d)" op what value
  | Invalid { op; reason } -> Printf.sprintf "%s: %s" op reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Lvm_error e -> Some ("Lvm_error: " ^ to_string e)
    | _ -> None)
