open Lvm_machine

type ext = ..
(* Extension slot: upper layers (the log-lifecycle subsystem) hang their
   per-kernel state here without the kernel depending on them. *)

type t = {
  machine : Machine.t;
  mutable next_id : int;
  mutable spaces : Address_space.t list;
  currents : Address_space.t option array; (* current space, per CPU *)
  log_slots : Segment.t option array; (* logger log-table slot -> log seg *)
  pmt_loads : int list array; (* key pages loaded per slot, for eviction *)
  direct_slots : (int * int, int) Hashtbl.t;
      (* (log segment id, data page) -> slot, for direct-mapped logs
         which need one log-table entry per data page *)
  slot_direct_page : (int * int) option array; (* inverse of the above *)
  mutable next_victim : int;
  frame_owner : (int, Segment.t * int) Hashtbl.t; (* frame -> seg, page *)
  dc_sources : (int, unit) Hashtbl.t; (* segment ids serving as dc sources *)
  default_log_frame : int;
  mutable on_protect_fault :
    (Address_space.t -> Region.t -> vaddr:int -> unit) option;
  mutable on_log_crossing :
    (Segment.t -> next_page:int -> absorbed:bool -> unit) option;
  mutable log_ext : ext option;
  c_materialized : Lvm_obs.Counter.counter;
  c_evicted : Lvm_obs.Counter.counter;
  c_switches : Lvm_obs.Counter.counter;
}

let machine t = t.machine
let perf t = Machine.perf t.machine
let obs t = Machine.obs t.machine
let snapshot t = Machine.snapshot t.machine
let time t = Machine.time t.machine
let compute t c = Machine.compute t.machine c

(* Each CPU runs its own process, so "the current address space" is a
   per-CPU notion; on a single-CPU kernel this degenerates to the
   original single slot. *)
let current t = t.currents.(Machine.current_cpu t.machine)
let set_current t v = t.currents.(Machine.current_cpu t.machine) <- v

let event t ev = Lvm_obs.Ctx.event (obs t) ~at:(Machine.time t.machine) ev

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* {1 Frames} *)

(* Write one resident page of a backed segment out to its store and
   release its frame, dropping page-table entries that reference it. *)
let evict_page t seg ~page =
  match (Segment.frame_of_page seg page, Segment.backing seg) with
  | None, _ ->
    Error.raise_
      (Error.Page_not_resident
         { op = "evict_page"; segment = Segment.id seg; page })
  | _, None ->
    Error.raise_
      (Error.No_backing_store { op = "evict_page"; segment = Segment.id seg })
  | Some frame, Some store ->
    Lvm_obs.Counter.incr t.c_evicted;
    Machine.compute t.machine Cycles.page_out;
    let buf = Bytes.create Addr.page_size in
    Physmem.blit_to_bytes (Machine.mem t.machine)
      ~src:(Addr.addr_of_page frame) buf ~pos:0 ~len:Addr.page_size;
    Backing_store.write_page store ~page buf;
    (* drop every mapping of this page *)
    List.iter
      (fun space ->
        List.iter
          (fun (base, region) ->
            if Segment.id (Region.segment region) = Segment.id seg then begin
              let off = (page * Addr.page_size) - Region.seg_offset region in
              if off >= 0 && off < Region.size region then
                Address_space.remove space
                  ~vpage:(Addr.page_number (base + off))
            end)
          (Address_space.regions space))
      t.spaces;
    Machine.l1_invalidate_page t.machine ~page:frame;
    Hashtbl.remove t.frame_owner frame;
    Segment.clear_frame seg ~page;
    Physmem.free_frame (Machine.mem t.machine) frame

(* A page is reclaimable when evicting it cannot lose state the kernel
   does not track: plain data segments with a backing store, not logged,
   not part of a deferred-copy pair. *)
let reclaimable t seg =
  Segment.kind seg = Segment.Std
  && Segment.backing seg <> None
  && Segment.source seg = None
  && Segment.logged_via seg = None
  && not (Hashtbl.mem t.dc_sources (Segment.id seg))

let reclaim_frames t ~target =
  let victims =
    Hashtbl.fold
      (fun _frame (seg, page) acc ->
        if List.length acc < target && reclaimable t seg then
          (seg, page) :: acc
        else acc)
      t.frame_owner []
  in
  List.iter (fun (seg, page) -> evict_page t seg ~page) victims;
  List.length victims

let materialize_page t seg ~page =
  match Segment.frame_of_page seg page with
  | Some f -> f
  | None ->
    Lvm_obs.Counter.incr t.c_materialized;
    let f =
      try Physmem.alloc_frame (Machine.mem t.machine)
      with Physmem.Out_of_frames ->
        (* memory pressure: page out reclaimable frames and retry *)
        if reclaim_frames t ~target:8 = 0 then raise Physmem.Out_of_frames
        else Physmem.alloc_frame (Machine.mem t.machine)
    in
    Segment.set_frame seg ~page ~frame:f;
    Hashtbl.replace t.frame_owner f (seg, page);
    (match (Segment.backing seg, Segment.manager seg) with
    | Some store, _ ->
      (* demand paging: load the page image from the backing store (the
         store, not the manager, defines a backed page's contents) *)
      Machine.compute t.machine Cycles.page_in;
      Physmem.blit_of_bytes (Machine.mem t.machine)
        (Backing_store.read_page store ~page)
        ~pos:0 ~dst:(Addr.addr_of_page f) ~len:Addr.page_size
    | None, Some fill -> fill seg page
    | None, None -> ());
    (* If this segment has a deferred-copy source, wire the new page. *)
    (match Segment.source seg with
    | None -> ()
    | Some (src, offset) ->
      let src_page = (offset / Addr.page_size) + page in
      if src_page < Segment.pages src then begin
        let src_frame =
          match Segment.frame_of_page src src_page with
          | Some f -> f
          | None ->
            let f = Physmem.alloc_frame (Machine.mem t.machine) in
            Segment.set_frame src ~page:src_page ~frame:f;
            Hashtbl.replace t.frame_owner f (src, src_page);
            f
        in
        Machine.dc_map t.machine ~dst_page:f
          ~src_addr:(Addr.addr_of_page src_frame)
      end);
    f

let paddr_of t seg ~off =
  if off < 0 || off >= Segment.size seg then
    Error.raise_ (Error.Out_of_segment { segment = Segment.id seg; off });
  let frame = materialize_page t seg ~page:(off / Addr.page_size) in
  Addr.addr_of_page frame + Addr.page_offset off

(* {1 Log segment activation} *)

let logger t = Machine.logger t.machine

(* Under the V1 codec every [Normal] log stream opens with the codec's
   8-byte version record — the on-disk tag that keeps V0 logs readable.
   The kernel materializes it when it arms a stream whose write position
   is still zero (first arming, or a truncation back to empty). *)
let ensure_stream_header t ls =
  if
    Logger.codec (logger t) = Log_record.V1
    && Segment.log_mode ls = Logger.Normal
    && (not (Segment.absorbing ls))
    && Segment.write_pos ls = 0
  then begin
    let frame = materialize_page t ls ~page:0 in
    let header = Log_record.Codec.encode_version_header () in
    Physmem.blit_of_bytes (Machine.mem t.machine) header ~pos:0
      ~dst:(Addr.addr_of_page frame) ~len:(Bytes.length header);
    Segment.set_write_pos ls Log_record.Codec.header_bytes
  end

(* Point the logger's log-table entry for [ls] at its current write
   position, materializing the page under it. *)
let arm_log_entry t ls ~index =
  ensure_stream_header t ls;
  let pos = Segment.write_pos ls in
  let page = pos / Addr.page_size in
  Segment.set_active_page ls page;
  let frame = materialize_page t ls ~page in
  Logger.set_log_entry (logger t) ~index ~mode:(Segment.log_mode ls)
    ~addr:(Addr.addr_of_page frame + Addr.page_offset pos)

(* [sync_log] is the hard synchronization point — commit/force/snapshot
   boundaries — so it first drains the logger's coalescing buffer (a
   no-op when coalescing is off). [sync_log_pos] only recomputes
   [write_pos] from the log table; the lifecycle layer's per-write room
   reservation uses it so reservations do not defeat coalescing. *)
let rec sync_log t ls =
  Logger.flush_coalesced (logger t);
  sync_log_pos t ls

and sync_log_pos t ls =
  Logger.complete_pending (logger t);
  match Segment.log_index ls with
  | None -> ()
  | Some index -> (
    match Logger.log_entry (logger t) ~index with
    | Some ((Logger.Normal | Logger.Indexed), addr) ->
      if not (Segment.absorbing ls) then
        Segment.set_write_pos ls
          ((Segment.active_page ls * Addr.page_size) + Addr.page_offset addr)
    | Some (Logger.Direct_mapped, _) -> ()
    | None ->
      (* Entry invalidated by a page crossing the kernel has not serviced
         yet: records end exactly at the page boundary. *)
      if not (Segment.absorbing ls) then
        Segment.set_write_pos ls
          ((Segment.active_page ls + 1) * Addr.page_size))

and deactivate_slot t index =
  match t.log_slots.(index) with
  | None -> ()
  | Some victim ->
    (match t.slot_direct_page.(index) with
    | Some key ->
      Hashtbl.remove t.direct_slots key;
      t.slot_direct_page.(index) <- None
    | None ->
      sync_log t victim;
      Segment.set_log_index victim None);
    Logger.invalidate_log_entry (logger t) ~index;
    List.iter
      (fun page -> Logger.invalidate_pmt (logger t) ~page)
      t.pmt_loads.(index);
    t.pmt_loads.(index) <- [];
    t.log_slots.(index) <- None

let free_slot t =
  let n = Array.length t.log_slots in
  let rec find i = if i = n then None
    else if t.log_slots.(i) = None then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> i
  | None ->
    (* Round-robin eviction of another log. *)
    let v = t.next_victim in
    t.next_victim <- (v + 1) mod n;
    deactivate_slot t v;
    v

let alloc_slot t ls =
  let index = free_slot t in
  t.log_slots.(index) <- Some ls;
  Segment.set_log_index ls (Some index);
  index

let activate_log t ls =
  match Segment.log_index ls with
  | Some index ->
    if Logger.log_entry (logger t) ~index = None
       && not (Segment.absorbing ls)
    then arm_log_entry t ls ~index;
    index
  | None ->
    let index = alloc_slot t ls in
    arm_log_entry t ls ~index;
    index

(* Direct-mapped logs need a log-table entry per data page, pointing at
   the base of the corresponding log page. *)
let alloc_direct_slot t ls ~seg_page =
  let key = (Segment.id ls, seg_page) in
  match Hashtbl.find_opt t.direct_slots key with
  | Some index -> index
  | None ->
    let index = free_slot t in
    t.log_slots.(index) <- Some ls;
    t.slot_direct_page.(index) <- Some key;
    Hashtbl.replace t.direct_slots key index;
    let log_frame = materialize_page t ls ~page:seg_page in
    Logger.set_log_entry (logger t) ~index ~mode:Logger.Direct_mapped
      ~addr:(Addr.addr_of_page log_frame);
    index

(* Make the right log-table entry live for a write to [seg_page] of the
   data segment logged to [ls]. *)
let activate_for_page t ls ~seg_page =
  match Segment.log_mode ls with
  | Logger.Direct_mapped -> alloc_direct_slot t ls ~seg_page
  | Logger.Normal | Logger.Indexed -> activate_log t ls

let load_pmt_for t ~key_page ~index =
  Logger.load_pmt (logger t) ~page:key_page ~log_index:index;
  if not (List.mem key_page t.pmt_loads.(index)) then
    t.pmt_loads.(index) <- key_page :: t.pmt_loads.(index)

(* The PMT key for a logged page: the physical page in prototype hardware,
   the virtual page with on-chip logging (Section 4.6). *)
let pmt_key t ~frame ~vpage =
  match Logger.hw (logger t) with
  | Logger.Prototype -> frame
  | Logger.On_chip -> vpage

(* {1 Page faults} *)

let install_pte t space ~vaddr =
  Machine.compute t.machine Cycles.page_fault;
  (perf t).Perf.page_faults <- (perf t).Perf.page_faults + 1;
  event t
    (Lvm_obs.Event.Page_fault { space = Address_space.id space; vaddr });
  match Address_space.find_region space ~vaddr with
  | None ->
    Error.raise_
      (Error.Segmentation_fault { space = Address_space.id space; vaddr })
  | Some (base, region) ->
    let seg = Region.segment region in
    let seg_page = Region.seg_page_of_vaddr region ~base ~vaddr in
    let frame = materialize_page t seg ~page:seg_page in
    let logged = Region.is_logged region in
    (* Logged pages run the on-chip cache in write-through mode so every
       write is visible to the logger (Section 3.2). *)
    let pte =
      {
        Address_space.frame;
        write_through = logged;
        logged;
        protected_ = Region.write_protected region;
        dirty = false;
        region;
        seg_page;
      }
    in
    (if logged then
       match Region.log region with
       | None -> assert false
       | Some ls ->
         let index = activate_for_page t ls ~seg_page in
         load_pmt_for t
           ~key_page:(pmt_key t ~frame ~vpage:(Addr.page_number vaddr))
           ~index);
    Address_space.install space ~vpage:(Addr.page_number vaddr) pte;
    pte

let pte_for t space ~vaddr =
  match Address_space.lookup space ~vpage:(Addr.page_number vaddr) with
  | Some pte -> pte
  | None -> install_pte t space ~vaddr

(* {1 Protection faults} *)

let handle_protect_fault t space pte ~vaddr =
  Machine.compute t.machine Cycles.write_protect_fault;
  (perf t).Perf.write_protect_faults <-
    (perf t).Perf.write_protect_faults + 1;
  event t
    (Lvm_obs.Event.Protect_fault { space = Address_space.id space; vaddr });
  pte.Address_space.protected_ <- false;
  match t.on_protect_fault with
  | None -> ()
  | Some f -> f space pte.Address_space.region ~vaddr

(* {1 Access} *)

let check_access ~vaddr ~size =
  (match size with
  | 1 | 2 | 4 -> ()
  | _ -> Error.raise_ (Error.Bad_access_size { size }));
  if vaddr land (size - 1) <> 0 then
    Error.raise_ (Error.Unaligned_access { vaddr; size })

let read t space ~vaddr ~size =
  check_access ~vaddr ~size;
  let pte = pte_for t space ~vaddr in
  let paddr =
    Addr.addr_of_page pte.Address_space.frame + Addr.page_offset vaddr
  in
  Machine.read t.machine ~paddr ~size

let write t space ~vaddr ~size value =
  check_access ~vaddr ~size;
  let pte = pte_for t space ~vaddr in
  if pte.Address_space.protected_ then
    handle_protect_fault t space pte ~vaddr;
  let paddr =
    Addr.addr_of_page pte.Address_space.frame + Addr.page_offset vaddr
  in
  let mode =
    if pte.Address_space.write_through then Machine.Write_through
    else Machine.Write_back
  in
  Machine.write t.machine ~paddr ~vaddr ~size ~mode
    ~logged:pte.Address_space.logged value;
  pte.Address_space.dirty <- true

let read_word t space vaddr = read t space ~vaddr ~size:4
let write_word t space vaddr v = write t space ~vaddr ~size:4 v

(* {1 Logging faults (registered with the logger)} *)

let handle_pmt_miss t ~addr =
  match Logger.hw (logger t) with
  | Logger.Prototype -> (
    (* [addr] is physical: recover the owning segment, then the single
       logged region the prototype supports per segment. *)
    match Hashtbl.find_opt t.frame_owner (Addr.page_number addr) with
    | None -> Logger.Drop
    | Some (seg, seg_page) -> (
      match Segment.logged_via seg with
      | None -> Logger.Drop
      | Some region_id -> (
        (* the region that currently owns this segment's logging — under
           per-process logs, the one the last context switch installed *)
        match
          List.find_map
            (fun space ->
              List.find_map
                (fun (_, r) ->
                  if Region.id r = region_id && Region.is_logged r then
                    Region.log r
                  else None)
                (Address_space.regions space))
            t.spaces
        with
        | None -> Logger.Drop
        | Some ls ->
          let index = activate_for_page t ls ~seg_page in
          load_pmt_for t ~key_page:(Addr.page_number addr) ~index;
          Logger.Fixed)))
  | Logger.On_chip -> (
    (* [addr] is virtual in the current space. *)
    match current t with
    | None -> Logger.Drop
    | Some space -> (
      match Address_space.find_region space ~vaddr:addr with
      | None -> Logger.Drop
      | Some (_, region) when not (Region.is_logged region) -> Logger.Drop
      | Some (base, region) -> (
        match Region.log region with
        | None -> Logger.Drop
        | Some ls ->
          let seg_page = Region.seg_page_of_vaddr region ~base ~vaddr:addr in
          let index = activate_for_page t ls ~seg_page in
          load_pmt_for t ~key_page:(Addr.page_number addr) ~index;
          Logger.Fixed)))

let handle_log_addr_invalid t ~log_index =
  match t.log_slots.(log_index) with
  | None -> Logger.Drop
  | Some ls -> (
    match Segment.log_mode ls with
    | Logger.Direct_mapped -> Logger.Drop
    | Logger.Normal | Logger.Indexed ->
      let next = Segment.active_page ls + 1 in
      (* Tell the log-lifecycle subsystem (if attached) about the page
         crossing; observers must be cycle-free. *)
      let notify absorbed =
        match t.on_log_crossing with
        | None -> ()
        | Some f -> f ls ~next_page:next ~absorbed
      in
      (* A [Log_exhaust] injection makes this crossing behave as if the
         user had provided no further pages, forcing the absorption
         branch below (Section 3.2's failure mode, on demand). *)
      let forced_exhaust =
        match
          Machine.fault_check t.machine ~site:Lvm_fault.Fault.Log_segment
        with
        | Some Lvm_fault.Fault.Log_exhaust -> true
        | Some _ | None -> false
      in
      (* Capacity the user provided (at creation or by extension) counts as
         "a page"; frames under it are materialized on demand. *)
      let have_page = (next < Segment.pages ls) && not forced_exhaust in
      if have_page && not (Segment.absorbing ls) then begin
        Segment.set_write_pos ls (next * Addr.page_size);
        arm_log_entry t ls ~index:log_index;
        notify false;
        Logger.Fixed
      end
      else begin
        (* No page provided in time: absorb records into the default log
           page; they are lost (Section 3.2). *)
        if not (Segment.absorbing ls) then begin
          Segment.set_write_pos ls (next * Addr.page_size);
          Segment.set_absorbing ls true;
          event t (Lvm_obs.Event.Log_absorb { segment = Segment.id ls })
        end;
        Segment.note_absorbed_crossing ls;
        Logger.set_log_entry (logger t) ~index:log_index
          ~mode:(Segment.log_mode ls)
          ~addr:(Addr.addr_of_page t.default_log_frame);
        notify true;
        Logger.Fixed
      end)

(* {1 Construction} *)

let create ?obs ?hw ?record_old_values ?codec ?coalesce_depth
    ?(frames = 4096) ?(log_entries = 64) ?cpus () =
  let machine =
    Machine.create ?obs ?hw ?record_old_values ?codec ?coalesce_depth ~frames
      ~log_entries ?cpus ()
  in
  let ctx = Machine.obs machine in
  let default_log_frame = Physmem.alloc_frame (Machine.mem machine) in
  let t =
    {
      machine;
      next_id = 1;
      spaces = [];
      currents = Array.make (Machine.cpus machine) None;
      log_slots = Array.make log_entries None;
      pmt_loads = Array.make log_entries [];
      direct_slots = Hashtbl.create 16;
      slot_direct_page = Array.make log_entries None;
      next_victim = 0;
      frame_owner = Hashtbl.create 256;
      dc_sources = Hashtbl.create 16;
      default_log_frame;
      on_protect_fault = None;
      on_log_crossing = None;
      log_ext = None;
      c_materialized = Lvm_obs.Ctx.counter ctx "kernel.pages_materialized";
      c_evicted = Lvm_obs.Ctx.counter ctx "kernel.pages_evicted";
      c_switches = Lvm_obs.Ctx.counter ctx "kernel.context_switches";
    }
  in
  (* Registered here so the counter appears in every snapshot from boot,
     even before any log is attached; Lvm_log increments it by name. *)
  ignore (Lvm_obs.Ctx.counter ctx "kernel.log_extends");
  Logger.set_fault_handler (Machine.logger machine) (function
    | Logger.Pmt_miss { paddr } -> handle_pmt_miss t ~addr:paddr
    | Logger.Log_addr_invalid { log_index } ->
      handle_log_addr_invalid t ~log_index);
  t

let create_space t =
  let s = Address_space.make ~id:(fresh_id t) in
  t.spaces <- s :: t.spaces;
  if current t = None then set_current t (Some s);
  s

let set_current_space t s = set_current t (Some s)
let current_space t = current t

let context_switch t space =
  Machine.compute t.machine Cycles.context_switch;
  Lvm_obs.Counter.incr t.c_switches;
  set_current t (Some space);
  match Logger.hw (logger t) with
  | Logger.On_chip ->
    (* the on-chip tables live in the TLB: flush them wholesale *)
    for index = 0 to Array.length t.log_slots - 1 do
      deactivate_slot t index
    done
  | Logger.Prototype ->
    (* claim shared logged segments for the incoming process's regions so
       its writes log to its own segments (Sections 2.1 and 3.1.2) *)
    List.iter
      (fun (_, region) ->
        if Region.is_logged region then begin
          let seg = Region.segment region in
          if Segment.logged_via seg <> Some (Region.id region) then begin
            Segment.set_logged_via seg (Some (Region.id region));
            for page = 0 to Segment.pages seg - 1 do
              match Segment.frame_of_page seg page with
              | Some frame -> Logger.invalidate_pmt (logger t) ~page:frame
              | None -> ()
            done
          end
        end)
      (Address_space.regions space)

let create_segment ?manager ?backing t ~size =
  (match backing with
  | Some store when Backing_store.size store < size ->
    Error.raise_
      (Error.Invalid
         { op = "create_segment";
           reason = "backing store smaller than segment" })
  | Some _ | None -> ());
  let seg = Segment.make ~id:(fresh_id t) ~kind:Segment.Std ~size in
  Segment.set_manager seg manager;
  Segment.set_backing seg backing;
  seg

(* msync analogue: push every resident page of a backed segment to its
   store without evicting it. *)
let sync_segment t seg =
  match Segment.backing seg with
  | None ->
    Error.raise_
      (Error.No_backing_store
         { op = "sync_segment"; segment = Segment.id seg })
  | Some store ->
    for page = 0 to Segment.pages seg - 1 do
      match Segment.frame_of_page seg page with
      | None -> ()
      | Some frame ->
        Machine.compute t.machine Cycles.page_out;
        let buf = Bytes.create Addr.page_size in
        Physmem.blit_to_bytes (Machine.mem t.machine)
          ~src:(Addr.addr_of_page frame) buf ~pos:0 ~len:Addr.page_size;
        Backing_store.write_page store ~page buf
    done

let create_log_segment ?(mode = Logger.Normal) t ~size =
  let seg = Segment.make ~id:(fresh_id t) ~kind:Segment.Log ~size in
  Segment.set_log_mode seg mode;
  seg

let create_region ?(seg_offset = 0) ?size t segment =
  let size =
    match size with Some s -> s | None -> Segment.size segment - seg_offset
  in
  Region.make ~id:(fresh_id t) ~segment ~seg_offset ~size

let bind _t space ?vaddr region = Address_space.bind space region ~vaddr
let unbind _t space region = Address_space.unbind space region

(* Re-derive the hardware mode bits of every resident page of a region
   after its logging configuration changed. *)
let refresh_region_ptes t region =
  List.iter
    (fun space ->
      match Region.binding region with
      | Some (sid, base) when sid = Address_space.id space ->
        let logged = Region.is_logged region in
        let log = Region.log region in
        for vpage = Addr.page_number base
          to Addr.page_number (base + Region.size region - 1) do
          match Address_space.lookup space ~vpage with
          | None -> ()
          | Some pte ->
            pte.Address_space.logged <- logged;
            pte.Address_space.write_through <- logged;
            if logged then
              match log with
              | None -> ()
              | Some ls ->
                let index =
                  activate_for_page t ls ~seg_page:pte.Address_space.seg_page
                in
                load_pmt_for t
                  ~key_page:(pmt_key t ~frame:pte.Address_space.frame ~vpage)
                  ~index
        done
      | _ -> ())
    t.spaces

let set_region_log t region log =
  Region.set_log region log;
  let seg = Region.segment region in
  (match log with
  | Some _ -> Segment.set_logged_via seg (Some (Region.id region))
  | None ->
    if Segment.logged_via seg = Some (Region.id region) then
      Segment.set_logged_via seg None);
  refresh_region_ptes t region

let set_logging_enabled t region enabled =
  Region.set_logging_enabled region enabled;
  refresh_region_ptes t region

(* {1 Log lifecycle hooks}

   The lifecycle itself — extension, reservation, truncation, extent
   accounting — lives in [Lvm_log] (lib/log); the kernel only exposes the
   privileged mechanics it needs: re-arming the logger at the current
   write position, a page-crossing observer, and an extension slot for
   its per-kernel registry. *)

let log_ext t = t.log_ext
let set_log_ext t v = t.log_ext <- v
let set_log_crossing_observer t f = t.on_log_crossing <- f

(* Leave absorption mode: the lifecycle layer provided fresh capacity, so
   logging resumes into the segment (records absorbed meanwhile are
   lost). *)
let leave_absorption t ls =
  if Segment.absorbing ls then begin
    Segment.set_absorbing ls false;
    match Segment.log_index ls with
    | None -> ()
    | Some index -> arm_log_entry t ls ~index
  end

(* Re-point the logger at the segment's current [write_pos] after the
   lifecycle layer moved it (truncation, compaction). The table entry's
   mode was fixed when the log was first armed, so a retarget suffices. *)
let rearm_log t ls =
  (* The lifecycle layer only calls this after moving [write_pos]
     (compaction, truncation): already-written records moved or died, so
     cached reader views of the record area are stale. *)
  Segment.bump_generation ls;
  ensure_stream_header t ls;
  let pos = Segment.write_pos ls in
  match Segment.log_index ls with
  | None -> Segment.set_active_page ls (pos / Addr.page_size)
  | Some index ->
    let page = pos / Addr.page_size in
    Segment.set_active_page ls page;
    let frame = materialize_page t ls ~page in
    Logger.retarget_log_entry (logger t) ~index
      ~addr:(Addr.addr_of_page frame + Addr.page_offset pos)

(* {1 Deferred copy} *)

let declare_source t ~dst ~src ~offset =
  if not (Addr.is_page_aligned offset) then
    Error.raise_
      (Error.Invalid
         { op = "declare_source"; reason = "offset must be page-aligned" });
  if offset + Segment.size dst > Segment.size src then
    Error.raise_
      (Error.Invalid { op = "declare_source"; reason = "source too small" });
  Segment.set_source dst (Some (src, offset));
  Hashtbl.replace t.dc_sources (Segment.id src) ();
  for page = 0 to Segment.pages dst - 1 do
    let src_page = (offset / Addr.page_size) + page in
    let src_frame = materialize_page t src ~page:src_page in
    let dst_frame = materialize_page t dst ~page in
    Machine.dc_map t.machine ~dst_page:dst_frame
      ~src_addr:(Addr.addr_of_page src_frame)
  done

let reset_deferred_copy t space ~start ~len =
  if len < 0 then
    Error.raise_
      (Error.Out_of_range
         { op = "reset_deferred_copy"; what = "len"; value = len });
  (perf t).Perf.dc_resets <- (perf t).Perf.dc_resets + 1;
  let scanned0 = (perf t).Perf.dc_pages_scanned in
  let dirty0 = (perf t).Perf.dc_pages_dirty in
  for vpage = Addr.page_number start
    to Addr.page_number (start + len - 1) do
    match Address_space.lookup space ~vpage with
    | None -> ()
    | Some pte ->
      Machine.dc_reset_page t.machine ~dst_page:pte.Address_space.frame;
      pte.Address_space.dirty <- false
  done;
  event t
    (Lvm_obs.Event.Dc_reset
       { pages = (perf t).Perf.dc_pages_scanned - scanned0;
         dirty = (perf t).Perf.dc_pages_dirty - dirty0 })

let reset_deferred_segment t seg =
  (perf t).Perf.dc_resets <- (perf t).Perf.dc_resets + 1;
  let scanned0 = (perf t).Perf.dc_pages_scanned in
  let dirty0 = (perf t).Perf.dc_pages_dirty in
  for page = 0 to Segment.pages seg - 1 do
    match Segment.frame_of_page seg page with
    | None -> ()
    | Some frame -> Machine.dc_reset_page t.machine ~dst_page:frame
  done;
  event t
    (Lvm_obs.Event.Dc_reset
       { pages = (perf t).Perf.dc_pages_scanned - scanned0;
         dirty = (perf t).Perf.dc_pages_dirty - dirty0 })

(* Enumerate the modified byte runs of a deferred-copy destination
   segment, at the line granularity the second-level cache tracks:
   exactly the modification set a failure-atomic snapshot must persist.
   Adjacent dirty lines coalesce into one span. Cycle-free — the dirty
   bits are already in the cache's line maps. *)
let dirty_spans t seg =
  let dc = Machine.deferred t.machine in
  let spans = ref [] (* newest first *) in
  let add off len =
    match !spans with
    | (o, l) :: rest when o + l = off -> spans := (o, l + len) :: rest
    | _ -> spans := (off, len) :: !spans
  in
  for page = 0 to Segment.pages seg - 1 do
    match Segment.frame_of_page seg page with
    | None -> ()
    | Some frame ->
      List.iter
        (fun line ->
          add
            ((page * Addr.page_size) + (line * Addr.line_size))
            Addr.line_size)
        (Lvm_machine.Deferred_cache.modified_lines dc ~dst_page:frame)
  done;
  List.rev !spans

(* {1 Write protection} *)

let protect_region t region =
  Region.set_write_protected region true;
  List.iter
    (fun space ->
      match Region.binding region with
      | Some (sid, base) when sid = Address_space.id space ->
        for vpage = Addr.page_number base
          to Addr.page_number (base + Region.size region - 1) do
          match Address_space.lookup space ~vpage with
          | None -> ()
          | Some pte -> pte.Address_space.protected_ <- true
        done
      | _ -> ())
    t.spaces

let set_protect_fault_handler t f = t.on_protect_fault <- f
let protect_fault_handler t = t.on_protect_fault

let remap_page t space region ~seg_page ~new_frame =
  let seg = Region.segment region in
  match Segment.frame_of_page seg seg_page with
  | None ->
    Error.raise_
      (Error.Page_not_resident
         { op = "remap_page"; segment = Segment.id seg; page = seg_page })
  | Some old_frame ->
    Machine.compute t.machine Cycles.page_remap;
    Segment.set_frame seg ~page:seg_page ~frame:new_frame;
    Hashtbl.remove t.frame_owner old_frame;
    Hashtbl.replace t.frame_owner new_frame (seg, seg_page);
    (match Region.binding region with
    | Some (sid, base) when sid = Address_space.id space ->
      let vpage =
        Addr.page_number
          (base + ((seg_page * Addr.page_size) - Region.seg_offset region))
      in
      (match Address_space.lookup space ~vpage with
      | Some pte -> pte.Address_space.frame <- new_frame
      | None -> ())
    | Some _ | None -> ());
    Machine.l1_invalidate_page t.machine ~page:old_frame;
    Physmem.free_frame (Machine.mem t.machine) old_frame

(* {1 Raw access} *)

let owner_of_frame t ~frame = Hashtbl.find_opt t.frame_owner frame

let find_mapping t ~vaddr =
  let in_space space =
    match Address_space.find_region space ~vaddr with
    | Some (base, region) ->
      Some
        ( Region.segment region,
          Region.seg_offset region + (vaddr - base) )
    | None -> None
  in
  let rest = List.filter_map in_space t.spaces in
  match current t with
  | Some space -> (
    match in_space space with Some x -> Some x | None ->
      (match rest with x :: _ -> Some x | [] -> None))
  | None -> (match rest with x :: _ -> Some x | [] -> None)

let seg_read_raw t seg ~off ~size =
  let paddr = paddr_of t seg ~off in
  let resolved =
    Lvm_machine.Deferred_cache.resolve_read (Machine.deferred t.machine)
      ~paddr
  in
  Machine.read_raw t.machine ~paddr:resolved ~size

let seg_write_raw t seg ~off ~size v =
  let paddr = paddr_of t seg ~off in
  Machine.write_raw t.machine ~paddr ~size v

(* {1 Multi-CPU scheduling} *)

let cpus t = Machine.cpus t.machine
let current_cpu t = Machine.current_cpu t.machine
let set_cpu t cpu = Machine.set_cpu t.machine cpu
let cpu_time t ~cpu = Machine.cpu_time t.machine ~cpu
let max_time t = Machine.max_time t.machine

(* Deterministic round-robin: each pass gives every live task one step on
   its CPU, in CPU order. Simulated time is carried per CPU by the
   machine's clocks, so interleaving at step granularity — rather than
   sorting by clock — keeps the schedule independent of the workloads'
   relative speeds, which is what makes multi-CPU runs reproducible. *)
let run_cpus t ~tasks =
  let n = Array.length tasks in
  if n = 0 || n > cpus t then
    invalid_arg "Kernel.run_cpus: need 1 <= tasks <= cpus";
  let live = Array.make n true in
  let remaining = ref n in
  while !remaining > 0 do
    for i = 0 to n - 1 do
      if live.(i) then begin
        set_cpu t i;
        if not (tasks.(i) ()) then begin
          live.(i) <- false;
          decr remaining
        end
      end
    done
  done;
  set_cpu t 0

let run_cpus_clocked t ~tasks =
  let n = Array.length tasks in
  if n = 0 || n > cpus t then
    invalid_arg "Kernel.run_cpus_clocked: need 1 <= tasks <= cpus";
  let live = Array.make n true in
  let remaining = ref n in
  while !remaining > 0 do
    (* Conservative event order: of the unfinished tasks, step the one
       whose CPU clock is lowest; scanning downwards with [<=] makes
       ties land on the lowest CPU index. *)
    let next = ref (-1) in
    for i = n - 1 downto 0 do
      if live.(i)
         && (!next = -1 || cpu_time t ~cpu:i <= cpu_time t ~cpu:!next)
      then next := i
    done;
    let i = !next in
    set_cpu t i;
    if not (tasks.(i) ()) then begin
      live.(i) <- false;
      decr remaining
    end
  done;
  set_cpu t 0
