open Lvm_machine

type kind = Std | Log

type t = {
  id : int;
  kind : kind;
  mutable size : int;
  mutable frames : int option array;
  mutable source : (t * int) option;
  mutable manager : (t -> int -> unit) option;
  mutable write_pos : int;
  mutable active_page : int;
  mutable log_index : int option;
  mutable log_mode : Logger.mode;
  mutable absorbing : bool;
  mutable absorbed_crossings : int;
  mutable logged_via : int option;
  mutable backing : Backing_store.t option;
  mutable generation : int;
}

let make ~id ~kind ~size =
  if size < 0 then
    Error.raise_ (Error.Invalid { op = "Segment.make"; reason = "negative size" });
  let size = Addr.align_up size ~alignment:Addr.page_size in
  {
    id;
    kind;
    size;
    frames = Array.make (max 1 (size / Addr.page_size)) None;
    source = None;
    manager = None;
    write_pos = 0;
    active_page = 0;
    log_index = None;
    log_mode = Logger.Normal;
    absorbing = false;
    absorbed_crossings = 0;
    logged_via = None;
    backing = None;
    generation = 0;
  }

let id t = t.id
let kind t = t.kind
let size t = t.size
let pages t = t.size / Addr.page_size

let check_page t page =
  if page < 0 || page >= pages t then
    Error.raise_
      (Error.Page_out_of_range { segment = t.id; page; pages = pages t })

let frame_of_page t page =
  check_page t page;
  t.frames.(page)

let set_frame t ~page ~frame =
  check_page t page;
  t.frames.(page) <- Some frame

let clear_frame t ~page =
  check_page t page;
  t.frames.(page) <- None

let grow t ~pages:n =
  if n < 0 then
    Error.raise_
      (Error.Out_of_range { op = "Segment.grow"; what = "page count"; value = n });
  let old = pages t in
  t.size <- t.size + (n * Addr.page_size);
  if pages t > Array.length t.frames then begin
    let frames = Array.make (max (pages t) (2 * Array.length t.frames)) None in
    Array.blit t.frames 0 frames 0 old;
    t.frames <- frames
  end

let source t = t.source
let set_source t s = t.source <- s
let manager t = t.manager
let set_manager t m = t.manager <- m

let log_only t what =
  if t.kind <> Log then
    Error.raise_ (Error.Not_a_log_segment { op = what; segment = t.id })

let write_pos t = log_only t "write_pos"; t.write_pos
let set_write_pos t p = log_only t "set_write_pos"; t.write_pos <- p
let active_page t = log_only t "active_page"; t.active_page
let set_active_page t p = log_only t "set_active_page"; t.active_page <- p
let log_index t = log_only t "log_index"; t.log_index
let set_log_index t i = log_only t "set_log_index"; t.log_index <- i
let log_mode t = log_only t "log_mode"; t.log_mode
let set_log_mode t m = log_only t "set_log_mode"; t.log_mode <- m
let absorbing t = log_only t "absorbing"; t.absorbing
let set_absorbing t b = log_only t "set_absorbing"; t.absorbing <- b
let absorbed_crossings t = log_only t "absorbed_crossings";
  t.absorbed_crossings

let note_absorbed_crossing t =
  log_only t "note_absorbed_crossing";
  t.absorbed_crossings <- t.absorbed_crossings + 1

let generation t = t.generation
let bump_generation t = t.generation <- t.generation + 1

let logged_via t = t.logged_via
let set_logged_via t r = t.logged_via <- r
let backing t = t.backing
let set_backing t b = t.backing <- b
