(** Typed errors raised by the VM kernel.

    Every recoverable misuse of the kernel interface raises
    [Lvm_error] carrying one of these constructors, replacing the
    ad-hoc [Invalid_argument] strings of earlier versions. Callers can
    match on the payload; the structured fields (address space and
    segment ids, addresses, offsets) are what a real kernel would
    deliver with the signal.

    Programming errors inside the simulator itself (negative cycle
    counts, malformed physical addresses) still raise
    [Invalid_argument] from the machine layer: those are bugs, not
    conditions a caller should handle. *)

type t =
  | Segmentation_fault of { space : int; vaddr : int }
      (** No region of the address space covers [vaddr]. *)
  | Unaligned_access of { vaddr : int; size : int }
  | Bad_access_size of { size : int }  (** Sizes are 1, 2 or 4 bytes. *)
  | Out_of_segment of { segment : int; off : int }
  | Page_not_resident of { op : string; segment : int; page : int }
  | No_backing_store of { op : string; segment : int }
  | Not_a_log_segment of { op : string; segment : int }
  | Out_of_range of { op : string; what : string; value : int }
      (** A parameter ([what]) of kernel operation [op] was outside its
          valid range. *)
  | Invalid of { op : string; reason : string }
      (** Catch-all for other invalid requests ([op] names the kernel
          operation). *)

exception Lvm_error of t

val raise_ : t -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
