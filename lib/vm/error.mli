(** Typed errors raised by the VM kernel.

    Every recoverable misuse of the kernel interface raises
    [Lvm_error] carrying one of these constructors, replacing the
    ad-hoc [Invalid_argument] strings of earlier versions. Callers can
    match on the payload; the structured fields (address space and
    segment ids, addresses, offsets) are what a real kernel would
    deliver with the signal.

    Programming errors inside the simulator itself (negative cycle
    counts, malformed physical addresses) still raise
    [Invalid_argument] from the machine layer: those are bugs, not
    conditions a caller should handle. *)

type t =
  | Segmentation_fault of { space : int; vaddr : int }
      (** No region of the address space covers [vaddr]. *)
  | Unaligned_access of { vaddr : int; size : int }
  | Bad_access_size of { size : int }  (** Sizes are 1, 2 or 4 bytes. *)
  | Out_of_segment of { segment : int; off : int }
  | Page_not_resident of { op : string; segment : int; page : int }
  | No_backing_store of { op : string; segment : int }
  | Not_a_log_segment of { op : string; segment : int }
  | Page_out_of_range of { segment : int; page : int; pages : int }
      (** A page index was outside the segment's page count. *)
  | Log_exhausted of { segment : int; pos : int; capacity : int }
      (** A logged write would run the log segment past its last page and
          the segment cannot be extended further; the record would be
          absorbed into the default log page and lost to recovery. *)
  | Log_capacity of { op : string; requested : int; capacity : int }
      (** A segment's worst-case log traffic ([requested] bytes) does not
          fit in the log segment provisioned for it. *)
  | Out_of_range of { op : string; what : string; value : int }
      (** A parameter ([what]) of kernel operation [op] was outside its
          valid range. *)
  | Invalid of { op : string; reason : string }
      (** Catch-all for other invalid requests ([op] names the kernel
          operation). *)

exception Lvm_error of t

val raise_ : t -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
