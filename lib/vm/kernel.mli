(** The virtual memory kernel: the V++ Cache Kernel analogue.

    The kernel owns the simulated machine and implements the VM system
    extensions of Section 3.2: fault handling for logged pages (putting
    pages in write-through mode and loading the logger's tables), logging
    faults (page-mapping-table reloads, log extension across page
    boundaries, default-page absorption), overload recovery, the
    deferred-copy mapping, and write-protection faults for the page-protect
    checkpointing baseline.

    All application memory access goes through {!read} and {!write}, which
    translate virtual addresses through the current address space's page
    table and charge the machine's timing model.

    Invalid requests raise {!Error.Lvm_error} with a typed payload
    (see {!Error}). *)

type t

type ext = ..
(** Extension slot: upper layers (notably the [Lvm_log] log-lifecycle
    subsystem) add a constructor and hang per-kernel state off
    {!set_log_ext} without the kernel depending on them. *)

val create :
  ?obs:Lvm_obs.Ctx.t -> ?hw:Lvm_machine.Logger.hw ->
  ?record_old_values:bool -> ?codec:Lvm_machine.Log_record.version ->
  ?coalesce_depth:int -> ?frames:int -> ?log_entries:int ->
  ?cpus:int -> unit -> t
(** Boot a kernel on a fresh machine. [record_old_values] enables the
    on-chip pre-image records of Section 4.6. [codec] and
    [coalesce_depth] configure the logger's record wire format and
    write-coalescing buffer (see {!Lvm_machine.Logger.create}); both
    default to off, the seed datapath. [obs] is the observability
    context shared with the machine (default: a fresh one). [cpus]
    (default 1) boots a multi-processor machine; see {!set_cpu} and
    {!run_cpus}. *)

val machine : t -> Lvm_machine.Machine.t
val perf : t -> Lvm_machine.Perf.t

val obs : t -> Lvm_obs.Ctx.t
(** The machine's observability context; the kernel traces VM faults and
    log maintenance into it and keeps [kernel.*] counters there. *)

val snapshot : t -> Lvm_obs.Snapshot.t
(** All counters — machine perf record plus [kernel.*] — at this moment. *)

val time : t -> int
val compute : t -> int -> unit

(** {1 Processors}

    The kernel runs one fault-handler context per CPU: the "current
    address space" is per-CPU state, and all other kernel tables are
    shared (one bus, one logger, one frame pool). Exactly one CPU
    executes at a time; {!run_cpus} interleaves them deterministically. *)

val cpus : t -> int

val current_cpu : t -> int

val set_cpu : t -> int -> unit
(** Switch the kernel (and machine) to CPU [i]: subsequent accesses
    charge its clock and cache and see its current address space. *)

val cpu_time : t -> cpu:int -> int

val max_time : t -> int
(** Latest CPU clock — the wall-clock time of a multi-CPU phase. *)

val run_cpus : t -> tasks:(unit -> bool) array -> unit
(** Deterministic round-robin multi-CPU scheduler: [tasks.(i)] runs on
    CPU [i]; each pass gives every unfinished task one step, in CPU
    order, with the kernel switched to that CPU for the duration of the
    step. A task returns [false] when finished. Returns with CPU 0
    active once every task has finished. Raises [Invalid_argument] if
    there are no tasks or more tasks than CPUs. *)

val run_cpus_clocked : t -> tasks:(unit -> bool) array -> unit
(** Deterministic clock-ordered multi-CPU scheduler: like {!run_cpus},
    but each iteration steps the unfinished task whose CPU clock is
    lowest (ties to the lowest CPU index) — conservative event order.
    Round-robin order charges a lagging CPU's next bus access with the
    whole clock skew accumulated by the leaders, which mis-prices
    coarse task steps (e.g. a step that commits a transaction);
    clock-ordered scheduling keeps the skew bounded by one step, so bus
    waits reflect genuine contention. Same determinism guarantee. *)

(** {1 Objects} *)

val create_space : t -> Address_space.t

val set_current_space : t -> Address_space.t -> unit
(** Make a space current (the on-chip logging hardware of Section 4.6 keys
    its tables by virtual address, so the kernel tracks whose TLB is
    loaded). *)

val current_space : t -> Address_space.t option

val context_switch : t -> Address_space.t -> unit
(** Switch the processor to another process's address space, unloading
    logger table state belonging to the outgoing process as Section 3.1.2
    describes: the prototype's page mapping table is keyed by physical
    page, so when several processes log the same shared segment to
    separate logs (the per-process database logs of Section 2.1), the
    kernel must invalidate the segment's PMT entries and re-point
    [logged_via] at the incoming process's region; the next logged write
    faults and reloads the right log. Charges the context-switch cost. *)

val create_segment :
  ?manager:(Segment.t -> int -> unit) -> ?backing:Backing_store.t -> t ->
  size:int -> Segment.t
(** A standard data segment; [manager] is the user-level page-fill hook.
    With [backing], the segment is demand-paged from (and evictable to)
    the given store — the mapped-file pattern; the store, not the
    manager, defines a backed page's initial contents. *)

val sync_segment : t -> Segment.t -> unit
(** Write every resident page of a backed segment to its store (msync). *)

val evict_page : t -> Segment.t -> page:int -> unit
(** Page one resident page out to the backing store, dropping its frame
    and mappings; the next access faults it back in. *)

val reclaim_frames : t -> target:int -> int
(** Evict up to [target] reclaimable pages (backed, unlogged, not part of
    a deferred-copy pair); returns how many were reclaimed. Invoked
    automatically under memory pressure. *)

val create_log_segment :
  ?mode:Lvm_machine.Logger.mode -> t -> size:int -> Segment.t
(** A log segment with initial capacity [size] bytes (whole pages). *)

val create_region : ?seg_offset:int -> ?size:int -> t -> Segment.t -> Region.t
(** A region over [segment\[seg_offset, seg_offset+size)]; defaults to the
    whole segment. *)

val bind : t -> Address_space.t -> ?vaddr:int -> Region.t -> int
(** Bind the region, returning its base virtual address. *)

val unbind : t -> Address_space.t -> Region.t -> unit

(** {1 Logging control} *)

val set_region_log : t -> Region.t -> Segment.t option -> unit
(** Declare (or remove) the region's log segment (Table 1: [Region::log]).
    Already-resident pages are switched to write-through/logged mode and
    the logger tables are updated. *)

val set_logging_enabled : t -> Region.t -> bool -> unit
(** Dynamically enable or disable logging for a region (Section 2.7). *)

val sync_log : t -> Segment.t -> unit
(** Bring the log segment's [write_pos] up to date from the logger's log
    table entry. This is the {e hard} sync — the commit/force/snapshot
    ordering point — so it first drains the logger's write-coalescing
    buffer (a no-op when coalescing is off). *)

val sync_log_pos : t -> Segment.t -> unit
(** Like {!sync_log} but without draining the coalescing buffer: only
    recomputes [write_pos]. The log-lifecycle layer's per-write room
    reservations use this (together with
    {!Lvm_machine.Logger.pending_log_bytes_bound}) so that reserving room
    on every write does not defeat coalescing. *)

(** {1 Log lifecycle hooks}

    Extension, reservation, truncation and extent accounting live in the
    [Lvm_log] subsystem (lib/log); the kernel exposes only the privileged
    mechanics it needs. No caller outside lib/log should manipulate
    log-table addresses directly. *)

val log_ext : t -> ext option
val set_log_ext : t -> ext option -> unit

val set_log_crossing_observer :
  t -> (Segment.t -> next_page:int -> absorbed:bool -> unit) option -> unit
(** Install a cycle-free observer invoked on every [Log_addr_invalid]
    page crossing of a normal/indexed log, after the kernel has serviced
    it: [next_page] is the page the logger advanced into, [absorbed]
    whether the crossing fell into the default log page. *)

val rearm_log : t -> Segment.t -> unit
(** Re-point the logger's log-table entry (if the segment holds one) at
    the segment's current [write_pos], materializing the page under it;
    with no table entry, just resynchronizes the active page. Called by
    the lifecycle layer after it moves [write_pos]. *)

val leave_absorption : t -> Segment.t -> unit
(** Resume logging into the segment after fresh capacity was provided
    while it was absorbing into the default log page; no-op when not
    absorbing. Records absorbed meanwhile are lost (Section 3.2). *)

(** {1 Access} *)

val read : t -> Address_space.t -> vaddr:int -> size:int -> int
val write : t -> Address_space.t -> vaddr:int -> size:int -> int -> unit

val read_word : t -> Address_space.t -> int -> int
val write_word : t -> Address_space.t -> int -> int -> unit

(** {1 Deferred copy} *)

val declare_source : t -> dst:Segment.t -> src:Segment.t -> offset:int -> unit
(** [Segment::sourceSegment]: segment [dst] appears initialized from [src]
    starting at page-aligned [offset] (Section 2.3). Materializes both
    segments and installs the second-level-cache mappings. *)

val reset_deferred_copy : t -> Address_space.t -> start:int -> len:int -> unit
(** [AddressSpace::resetDeferredCopy]: undo all modifications to
    deferred-copy destination pages in the given virtual range. *)

val reset_deferred_segment : t -> Segment.t -> unit
(** Reset every deferred-copy page of a destination segment. *)

val dirty_spans : t -> Segment.t -> (int * int) list
(** Byte [(off, len)] runs of [seg] modified since its deferred-copy
    state was last reset, ascending, with adjacent runs coalesced — the
    modification set at the line granularity the second-level cache
    tracks. [seg] must be a deferred-copy destination (otherwise the
    list is empty: nothing tracks its writes). Cycle-free; this is the
    dirty-span enumeration hook the failure-atomic snapshot layer
    ([Lvm_fams]) builds its redo records from. *)

(** {1 Write protection (page-protect baseline)} *)

val protect_region : t -> Region.t -> unit
(** Write-protect all pages of the region; the next write to each page
    faults once (Li/Appel checkpointing, Section 5.1). *)

val set_protect_fault_handler :
  t -> (Address_space.t -> Region.t -> vaddr:int -> unit) option -> unit

val protect_fault_handler :
  t -> (Address_space.t -> Region.t -> vaddr:int -> unit) option
(** The currently installed handler (so facilities can chain). *)

val remap_page :
  t -> Address_space.t -> Region.t -> seg_page:int -> new_frame:int -> unit
(** Point segment page [seg_page] at [new_frame]: update the segment's
    frame table, the reverse frame map, and the page-table entry in the
    given space; invalidate first-level lines of the old frame and free
    it. This is the Li/Appel restore primitive — rolling back a modified
    page by resetting the mapping to its checkpoint copy (Section 5.1).
    Charged as a page-table update, not a copy. *)

(** {1 Raw (untimed) segment access — initialization and verification} *)

val materialize_page : t -> Segment.t -> page:int -> int
(** Ensure the page has a frame; returns the frame number. *)

val paddr_of : t -> Segment.t -> off:int -> int
(** Physical address of segment offset [off] (materializing the page). *)

val owner_of_frame : t -> frame:int -> (Segment.t * int) option
(** Reverse map from a physical frame to the (segment, page) holding it;
    how log readers translate the physical addresses the prototype logger
    records back to segment offsets (Section 3.1.2). *)

val find_mapping : t -> vaddr:int -> (Segment.t * int) option
(** Translate a virtual address to (segment, byte offset), preferring the
    current address space; how log readers resolve the virtual addresses
    on-chip loggers record (Section 4.6). *)

val seg_read_raw : t -> Segment.t -> off:int -> size:int -> int
(** Untimed read of the segment's logical content (deferred-copy source
    redirection honored). *)

val seg_write_raw : t -> Segment.t -> off:int -> size:int -> int -> unit
