(** Memory segments: the virtual memory system objects that regions map.

    A segment is a sized memory object whose pages are materialized into
    physical page frames on demand by the kernel. Two kinds exist,
    mirroring the paper's [StdSegment] and [LogSegment] classes (Table 1):

    - [Std] segments hold application data and may name another segment as
      their deferred-copy source (Section 2.3);
    - [Log] segments receive log records from the logger hardware; they
      grow by explicit extension and carry a write position maintained by
      the kernel in concert with the logger's log table.

    Segments are created through {!Kernel} so they are registered with the
    machine; this module holds their state and invariants. *)

type kind = Std | Log

type t

val make : id:int -> kind:kind -> size:int -> t
(** Internal constructor used by the kernel. [size] is rounded up to whole
    pages. *)

val id : t -> int
val kind : t -> kind
val size : t -> int
(** Current size in bytes (whole pages). *)

val pages : t -> int

val frame_of_page : t -> int -> int option
(** Physical frame holding segment page [i], if materialized. *)

val set_frame : t -> page:int -> frame:int -> unit
val clear_frame : t -> page:int -> unit

val grow : t -> pages:int -> unit
(** Extend the segment by whole pages (log segment extension). *)

val source : t -> (t * int) option
(** Deferred-copy source segment and starting offset, if declared. *)

val set_source : t -> (t * int) option -> unit

val manager : t -> (t -> int -> unit) option
(** User-level page-fill hook (the paper's SegmentMan): called with the
    segment and page index when a page is materialized. *)

val set_manager : t -> (t -> int -> unit) option -> unit

(** {1 Log-segment state} (kernel-maintained; [Error.Lvm_error
    (Not_a_log_segment _)] on [Std]) *)

val write_pos : t -> int
(** Byte offset of the end of the logged data. *)

val set_write_pos : t -> int -> unit

val active_page : t -> int
(** Page the logger is currently writing (i.e. [write_pos]'s page). *)

val set_active_page : t -> int -> unit

val log_index : t -> int option
(** Logger log-table slot while this log is active. *)

val set_log_index : t -> int option -> unit

val log_mode : t -> Lvm_machine.Logger.mode
val set_log_mode : t -> Lvm_machine.Logger.mode -> unit

val absorbing : t -> bool
(** True while the logger is absorbing this log's records into the default
    page because the user did not extend the segment in time; such records
    are lost (Section 3.2). *)

val set_absorbing : t -> bool -> unit

val absorbed_crossings : t -> int
val note_absorbed_crossing : t -> unit

val generation : t -> int
(** Layout generation of a log segment's record area: bumped every time
    already-written records move or disappear (compaction recycling
    extents, suffix truncation — anything that re-arms the logger at a
    moved write position). Readers holding cached translations or a
    cached length ({!Lvm.Log_reader.fold}) compare generations to detect
    that their view went stale. Plain appends do not bump it. *)

val bump_generation : t -> unit

val logged_via : t -> int option
(** In prototype hardware, the single region id whose log applies to this
    segment (the per-segment restriction of Section 3.1.2). *)

val set_logged_via : t -> int option -> unit

val backing : t -> Backing_store.t option
(** The paging store behind this segment, if it is demand-paged. *)

val set_backing : t -> Backing_store.t option -> unit
