open Lvm_machine

type t = {
  id : int;
  segment : Segment.t;
  seg_offset : int;
  size : int;
  mutable log : Segment.t option;
  mutable logging_enabled : bool;
  mutable binding : (int * int) option;
  mutable write_protected : bool;
}

let make ~id ~segment ~seg_offset ~size =
  if not (Addr.is_page_aligned seg_offset) then
    Error.raise_
      (Error.Invalid
         { op = "Region.make"; reason = "segment offset must be page-aligned" });
  if size <= 0 then
    Error.raise_
      (Error.Out_of_range { op = "Region.make"; what = "size"; value = size });
  let size = Addr.align_up size ~alignment:Addr.page_size in
  if seg_offset + size > Segment.size segment then
    Error.raise_
      (Error.Invalid { op = "Region.make"; reason = "region exceeds segment" });
  { id; segment; seg_offset; size; log = None; logging_enabled = true;
    binding = None; write_protected = false }

let id t = t.id
let segment t = t.segment
let seg_offset t = t.seg_offset
let size t = t.size
let pages t = t.size / Addr.page_size
let log t = t.log
let set_log t l = t.log <- l
let logging_enabled t = t.logging_enabled
let set_logging_enabled t b = t.logging_enabled <- b
let is_logged t = t.log <> None && t.logging_enabled
let binding t = t.binding
let set_binding t b = t.binding <- b
let write_protected t = t.write_protected
let set_write_protected t b = t.write_protected <- b

let seg_page_of_vaddr t ~base ~vaddr =
  let off = vaddr - base in
  assert (off >= 0 && off < t.size);
  (t.seg_offset + off) / Addr.page_size
