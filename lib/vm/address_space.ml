open Lvm_machine

type pte = {
  mutable frame : int;
  mutable write_through : bool;
  mutable logged : bool;
  mutable protected_ : bool;
  mutable dirty : bool;
  region : Region.t;
  seg_page : int;
}

type t = {
  id : int;
  table : (int, pte) Hashtbl.t;
  mutable regions : (int * Region.t) list;
  mutable next_base : int;
}

(* Virtual layout: user bindings are allocated upward from 256 MB with a
   one-page guard gap between regions. *)
let first_base = 0x1000_0000

let make ~id = { id; table = Hashtbl.create 256; regions = []; next_base =
                   first_base }

let id t = t.id
let lookup t ~vpage = Hashtbl.find_opt t.table vpage
let install t ~vpage pte = Hashtbl.replace t.table vpage pte
let remove t ~vpage = Hashtbl.remove t.table vpage
let iter_ptes t f = Hashtbl.iter f t.table
let regions t = t.regions

let find_region t ~vaddr =
  List.find_opt
    (fun (base, r) -> vaddr >= base && vaddr < base + Region.size r)
    t.regions

let overlaps t ~base ~size =
  List.exists
    (fun (b, r) -> base < b + Region.size r && b < base + size)
    t.regions

let bind t region ~vaddr =
  if Region.binding region <> None then
    Error.raise_
      (Error.Invalid
         { op = "Address_space.bind"; reason = "region is already bound" });
  let size = Region.size region in
  let base =
    match vaddr with
    | Some v ->
      if not (Addr.is_page_aligned v) then
        Error.raise_
          (Error.Invalid
             { op = "Address_space.bind";
               reason = "address must be page-aligned" });
      if overlaps t ~base:v ~size then
        Error.raise_
          (Error.Invalid
             { op = "Address_space.bind"; reason = "overlapping binding" });
      v
    | None ->
      let v = t.next_base in
      t.next_base <- v + size + Addr.page_size;
      v
  in
  if base >= t.next_base then t.next_base <- base + size + Addr.page_size;
  t.regions <-
    List.sort (fun (a, _) (b, _) -> compare a b) ((base, region) :: t.regions);
  Region.set_binding region (Some (t.id, base));
  base

let unbind t region =
  match Region.binding region with
  | None -> ()
  | Some (sid, base) ->
    if sid <> t.id then
      Error.raise_
        (Error.Invalid
           { op = "Address_space.unbind";
             reason = "region bound to another space" });
    for vpage = Addr.page_number base
      to Addr.page_number (base + Region.size region - 1) do
      Hashtbl.remove t.table vpage
    done;
    t.regions <- List.filter (fun (_, r) -> Region.id r <> Region.id region)
        t.regions;
    Region.set_binding region None
