open Lvm_machine

type saved = (int, int) Hashtbl.t (* seg_page -> shadow frame *)

type checkpointed = {
  k : Kernel.t;
  space : Address_space.t;
  region : Region.t;
  saved : saved;
  mutable faults : int;
}

type t = {
  kernel : Kernel.t;
  mutable attached : checkpointed list;
}

let handle t _space region ~vaddr =
  match
    List.find_opt
      (fun c -> Region.id c.region = Region.id region)
      t.attached
  with
  | None -> ()
  | Some c ->
    c.faults <- c.faults + 1;
    let base =
      match Region.binding region with
      | Some (_, b) -> b
      | None -> invalid_arg "Protect_checkpoint: region unbound"
    in
    let seg_page = Region.seg_page_of_vaddr region ~base ~vaddr in
    if not (Hashtbl.mem c.saved seg_page) then begin
      (* first write this epoch: copy the page out as the checkpoint *)
      let shadow = Physmem.alloc_frame (Machine.mem (Kernel.machine c.k)) in
      let src = Kernel.paddr_of c.k (Region.segment region)
          ~off:(seg_page * Addr.page_size)
      in
      Machine.bcopy (Kernel.machine c.k) ~src
        ~dst:(Addr.addr_of_page shadow) ~len:Addr.page_size;
      Hashtbl.replace c.saved seg_page shadow
    end

let manager kernel =
  let t = { kernel; attached = [] } in
  let previous = Kernel.protect_fault_handler kernel in
  Kernel.set_protect_fault_handler kernel
    (Some
       (fun space region ~vaddr ->
         handle t space region ~vaddr;
         match previous with
         | Some f -> f space region ~vaddr
         | None -> ()));
  t

let attach t ~space region =
  if Region.binding region = None then
    Error.raise_
      (Error.Invalid
         { op = "Protect_checkpoint.attach"; reason = "region must be bound" });
  let c = { k = t.kernel; space; region; saved = Hashtbl.create 16;
            faults = 0 } in
  (* materialize all pages so protection sweeps cover them *)
  (match Region.binding region with
  | Some (_, base) ->
    for p = 0 to Region.pages region - 1 do
      ignore (Kernel.read t.kernel space ~vaddr:(base + (p * Addr.page_size))
                ~size:4)
    done
  | None -> ());
  t.attached <- c :: t.attached;
  c

let drop_saved c =
  Hashtbl.iter
    (fun _ shadow -> Physmem.free_frame (Machine.mem (Kernel.machine c.k))
        shadow)
    c.saved;
  Hashtbl.reset c.saved

let checkpoint c =
  drop_saved c;
  Kernel.protect_region c.k c.region

let restore c =
  (* remap each modified page to its saved (checkpoint) copy *)
  Hashtbl.iter
    (fun seg_page shadow ->
      Kernel.remap_page c.k c.space c.region ~seg_page ~new_frame:shadow)
    c.saved;
  Hashtbl.reset c.saved;
  Kernel.protect_region c.k c.region

let modified_pages c = Hashtbl.length c.saved
let faults_taken c = c.faults
