(** Address spaces: per-process page tables plus the set of bound regions.

    Translation state is a software page table mapping virtual page number
    to a page-table entry carrying the frame and the per-page mode bits
    the hardware needs (write-through, logged, write-protected). Entries
    are installed lazily by the kernel's page-fault handler. *)

type pte = {
  mutable frame : int;
  mutable write_through : bool;
  mutable logged : bool;
  mutable protected_ : bool;
  mutable dirty : bool;
  region : Region.t;
  seg_page : int;  (** Index of the backing page within the segment. *)
}

type t

val make : id:int -> t
val id : t -> int

val lookup : t -> vpage:int -> pte option
val install : t -> vpage:int -> pte -> unit
val remove : t -> vpage:int -> unit

val iter_ptes : t -> (int -> pte -> unit) -> unit
(** Iterate over (vpage, pte) pairs in no particular order. *)

val regions : t -> (int * Region.t) list
(** Bound regions as [(base vaddr, region)], sorted by base. *)

val find_region : t -> vaddr:int -> (int * Region.t) option
(** The bound region containing [vaddr], with its base. *)

val bind : t -> Region.t -> vaddr:int option -> int
(** Bind a region at [vaddr] (page-aligned) or at a kernel-chosen address
    when [None]. Returns the base address.
    @raise Error.Lvm_error on overlap or misalignment. *)

val unbind : t -> Region.t -> unit
(** Remove the region's binding and all its page-table entries. *)
