open Lvm_machine
open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t

let apply_record k ~target ~off (r : Log_record.t) =
  let paddr = Kernel.paddr_of k target ~off in
  Machine.write (Kernel.machine k) ~paddr ~size:r.Log_record.size
    ~mode:Machine.Write_back ~logged:false r.Log_record.value

let roll_forward k ~log ~from ~apply =
  let len = Log_reader.length k log in
  let rec go off =
    if off + Log_record.bytes > len then off
    else
      let r = Log_reader.read_at_timed k log ~off in
      match apply ~off r with
      | `Continue -> go (off + Log_record.bytes)
      | `Stop -> off
  in
  go from

let rollback k ~space ~working ~working_region ~base ~log ~upto =
  (* Re-applied updates must not be re-logged (logging is dynamically
     switchable per region, Section 2.7). *)
  Kernel.set_logging_enabled k working_region false;
  Kernel.reset_deferred_copy k space ~start:base
    ~len:(Region.size working_region);
  let stop =
    roll_forward k ~log ~from:0 ~apply:(fun ~off:_ r ->
        if r.Log_record.pre_image then `Continue
        else if not (upto r) then `Stop
        else
          match Log_reader.locate k r with
          | Some (seg, off) when Segment.id seg = Segment.id working ->
            apply_record k ~target:working ~off r;
            `Continue
          | Some _ | None -> `Continue)
  in
  Lvm_log.truncate_suffix (Lvm_log.of_segment k log) ~new_end:stop;
  Kernel.set_logging_enabled k working_region true

let cult k ~working ~checkpoint ~log ~upto =
  let applied = ref 0 in
  let stop =
    roll_forward k ~log ~from:0 ~apply:(fun ~off:_ r ->
        if r.Log_record.pre_image then `Continue
        else if not (upto r) then `Stop
        else begin
          (match Log_reader.locate k r with
          | Some (seg, off) when Segment.id seg = Segment.id working ->
            apply_record k ~target:checkpoint ~off r;
            incr applied
          | Some _ | None -> ());
          `Continue
        end)
  in
  (* checkpoint-driven compaction: CULT'd records are dead, so the
     extents below [stop] are truncatable and get recycled *)
  Lvm_log.truncate (Lvm_log.of_segment k log) ~keep_from:stop;
  !applied

let cult_all k ~working ~checkpoint ~log =
  cult k ~working ~checkpoint ~log ~upto:(fun _ -> true)
