open Lvm_machine
open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t

let apply_record k ~target ~off (r : Log_record.t) =
  let paddr = Kernel.paddr_of k target ~off in
  Machine.write (Kernel.machine k) ~paddr ~size:r.Log_record.size
    ~mode:Machine.Write_back ~logged:false r.Log_record.value

let roll_forward k ~log ~from ~apply =
  match Log_reader.stream_version k log with
  | Log_record.V0 ->
    let len = Log_reader.length k log in
    let rec go off =
      if off + Log_record.bytes > len then off
      else
        let r = Log_reader.read_at_timed k log ~off in
        match apply ~off r with
        | `Continue -> go (off + Log_record.bytes)
        | `Stop -> off
    in
    go from
  | Log_record.V1 ->
    (* Containers are the only valid stop offsets of an encoded stream
       (truncating inside one would tear it, and a record after a dead
       delta's predecessor must never survive alone), so the walk applies
       container by container: the reader charges one pass over the
       container's bytes, then every logical record is offered to
       [apply]. A [`Stop] anywhere in a container stops at the
       container's start — replay is idempotent (records carry absolute
       values), so records of a partially-applied container are simply
       replayed next time. *)
    let exception Stop of int in
    (try
       let stop =
         Log_reader.fold_phys k log ~init:(max from 0)
           ~f:(fun acc ~off ~next rs ->
             if next <= from then acc
             else begin
               Log_reader.charge_read k log ~off ~len:(next - off);
               List.iter
                 (fun r ->
                   match apply ~off r with
                   | `Continue -> ()
                   | `Stop -> raise (Stop off))
                 rs;
               next
             end)
       in
       stop
     with Stop off -> off)

let rollback k ~space ~working ~working_region ~base ~log ~upto =
  (* Re-applied updates must not be re-logged (logging is dynamically
     switchable per region, Section 2.7). *)
  Kernel.set_logging_enabled k working_region false;
  Kernel.reset_deferred_copy k space ~start:base
    ~len:(Region.size working_region);
  let stop =
    roll_forward k ~log ~from:0 ~apply:(fun ~off:_ r ->
        if r.Log_record.pre_image then `Continue
        else if not (upto r) then `Stop
        else
          match Log_reader.locate k r with
          | Some (seg, off) when Segment.id seg = Segment.id working ->
            apply_record k ~target:working ~off r;
            `Continue
          | Some _ | None -> `Continue)
  in
  Lvm_log.truncate_suffix (Lvm_log.of_segment k log) ~new_end:stop;
  Kernel.set_logging_enabled k working_region true

let cult k ~working ~checkpoint ~log ~upto =
  let applied = ref 0 in
  let stop =
    roll_forward k ~log ~from:0 ~apply:(fun ~off:_ r ->
        if r.Log_record.pre_image then `Continue
        else if not (upto r) then `Stop
        else begin
          (match Log_reader.locate k r with
          | Some (seg, off) when Segment.id seg = Segment.id working ->
            apply_record k ~target:checkpoint ~off r;
            incr applied
          | Some _ | None -> ());
          `Continue
        end)
  in
  (* checkpoint-driven compaction: CULT'd records are dead, so the
     extents below [stop] are truncatable and get recycled *)
  Lvm_log.truncate (Lvm_log.of_segment k log) ~keep_from:stop;
  !applied

let cult_all k ~working ~checkpoint ~log =
  cult k ~working ~checkpoint ~log ~upto:(fun _ -> true)
