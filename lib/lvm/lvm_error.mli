(** The unified error surface of the result-typed public APIs.

    The repo grew two error vocabularies: the kernel's typed exception
    payloads ({!Lvm_vm.Error.t} — address faults, log exhaustion, range
    errors) and per-facility variants like [Lvm_store.Store.error]
    (admission control, transaction limits). Result-typed entry points
    ({!Lvm_fams}, [Lvm_store.Store]) return this one type instead, so a
    caller matches a single scheme — and can still drill into the typed
    VM payload when it needs to (e.g. [Error (Vm (Log_exhausted _))] as
    a backpressure signal). *)

type t =
  | Vm of Lvm_vm.Error.t
      (** A kernel/VM error surfaced through a result-typed API. *)
  | Overloaded of { shard : int }
      (** Admission control shed the request (store shard busy). *)
  | Txn_too_large of { writes : int; limit : int }
  | Invalid_key of { key : int }
  | Shed of { shard : int }
      (** The shard's token-bucket admission gate refused the request
          outright (overload shedding — retrying immediately will shed
          again; back off instead). Distinct from [Overloaded], which
          reports log-room backpressure on an admitted transaction. *)
  | Moved of { key : int; shard : int }
      (** The key's bucket is mid-handoff to [shard] (a shard split or
          merge is draining): the transaction was not started and should
          be requeued — the route flips as soon as the cutover commits. *)
  | Snapshot_unavailable of { ts : int; floor : int; frontier : int }
      (** An MVCC snapshot at [ts] cannot be served: versions at or
          below [floor] have been pruned into the base image, and the
          consistent cut has only reached [frontier]. Readable as-of
          timestamps lie in [[floor, frontier]]; a released or
          recovery-invalidated snapshot also reports this. *)

val of_vm : Lvm_vm.Error.t -> t

val to_string : t -> string
(** Human-readable rendering; for the store constructors this reproduces
    [Lvm_store.Store.error_to_string]'s exact strings. *)

val pp : Format.formatter -> t -> unit

val guard : (unit -> 'a) -> ('a, t) result
(** Run [f], catching {e only} [Lvm_vm.Error.Lvm_error] and reflecting
    its payload as [Error (Vm _)]. Injected crash faults
    ([Lvm_fault.Fault.Crashed]) and programming errors propagate — a
    simulated machine death must never be swallowed into a result. *)
