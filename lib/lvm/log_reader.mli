(** Reading log segments.

    A log segment holds a time-ordered sequence of 16-byte records (earlier
    writes at lower offsets, Section 2.1). This module parses them, either
    untimed (for checkers, debuggers attached out-of-band, and tests) or
    timed (charging the machine's read costs, as an application scanning
    its own log would).

    Prototype-logger records carry physical addresses; {!locate} translates
    them back to (segment, offset) through the kernel's frame map, and
    {!vaddr_in} further maps them into a bound region's virtual range. *)

type kernel = Lvm_vm.Kernel.t
type segment = Lvm_vm.Segment.t

val length : kernel -> segment -> int
(** Bytes of records currently in the log (syncs with the logger, which
    also drains its coalescing buffer when one is configured). *)

val stream_version : kernel -> segment -> Lvm_machine.Log_record.version
(** Wire format of the segment's record stream: the logger's configured
    codec for [Normal]-mode streams, [V0] for mapped/streamed output. *)

val record_count : kernel -> segment -> int
(** Logical records in the log (decoded count under [V1]). *)

val fold_phys :
  kernel -> segment -> init:'a ->
  f:('a -> off:int -> next:int -> Lvm_machine.Log_record.t list -> 'a) -> 'a
(** Untimed fold over {e physical} records — the stream's containers.
    Under [V0] every container is one record; under [V1] a container may
    decode to several logical records (a run) or none (the version
    header, pads). [next] is the offset just past the container, the
    only valid truncation points of a [V1] stream. *)

val read_at : kernel -> segment -> off:int -> Lvm_machine.Log_record.t
(** Untimed parse of the record at byte offset [off]. *)

val read_at_timed : kernel -> segment -> off:int -> Lvm_machine.Log_record.t
(** As {!read_at} but charging four word reads through the cache model. *)

val charge_read : kernel -> segment -> off:int -> len:int -> unit
(** Charge the cache-model cost of reading [len] stream bytes at [off]
    (one word read per 4 bytes) without parsing them — how the
    checkpoint machinery prices a pass over an encoded container. *)

val map : kernel -> Lvm_vm.Address_space.t -> segment -> int
(** Bind the log segment into an address space for reading (Section 2.1:
    "the log segment may also be mapped into the address space, so that
    the same (or a different) application can read the log records").
    Returns the base address; parse records with {!read_mapped}. *)

val read_mapped :
  kernel -> Lvm_vm.Address_space.t -> base:int -> off:int ->
  Lvm_machine.Log_record.t
(** Parse the record at byte offset [off] of a log mapped at [base],
    reading through the address space like any application load. *)

val fold :
  kernel -> segment -> init:'a ->
  f:('a -> off:int -> Lvm_machine.Log_record.t -> 'a) -> 'a
(** Untimed fold over all records in log order. Safe against concurrent
    truncation: if [f] compacts or truncates the log mid-fold, the walk
    detects the segment's layout-generation change, invalidates its
    cached page translation and re-clamps the remaining span to the new
    [write_pos] instead of reading stale bytes through a recycled
    extent's old mapping. *)

val iter :
  kernel -> segment -> f:(off:int -> Lvm_machine.Log_record.t -> unit) -> unit

val fold_from :
  kernel -> segment -> ts:int -> init:'a ->
  f:('a -> off:int -> Lvm_machine.Log_record.t -> 'a) -> 'a * int
(** Incremental variant of {!fold} for log-tailing appliers: visit only
    records whose [timestamp] is strictly greater than [ts], and return
    the accumulator together with the highest timestamp seen ([ts]
    itself when nothing qualified) — the applied frontier to pass back
    on the next tick. Record timestamps are nondecreasing in log order,
    so under [V0] (fixed-size records) the walk binary-searches its
    starting record instead of rescanning sealed extents from zero;
    [V1] streams are walked and filtered. *)

val to_list : kernel -> segment -> Lvm_machine.Log_record.t list

val locate :
  kernel -> Lvm_machine.Log_record.t -> (Lvm_vm.Segment.t * int) option
(** Translate a record's address to the owning data segment and byte
    offset: via the frame map for the prototype logger's physical
    addresses, via the address spaces for on-chip virtual addresses. *)

val vaddr_in :
  base:int -> region:Lvm_vm.Region.t -> Lvm_vm.Segment.t -> int -> int option
(** [vaddr_in ~base ~region seg off] is the virtual address of segment
    offset [off] within [region] bound at [base], if covered. *)
