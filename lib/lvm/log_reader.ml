open Lvm_machine
open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t

let length k ls =
  Kernel.sync_log k ls;
  Segment.write_pos ls

(* The wire format of the segment's record stream. Streams are written by
   this kernel's logger, so the logger's configured codec is
   authoritative; only [Normal]-mode streams carry encoded records. *)
let stream_version k ls =
  match Segment.log_mode ls with
  | Logger.Normal -> Logger.codec (Machine.logger (Kernel.machine k))
  | Logger.Direct_mapped | Logger.Indexed -> Log_record.V0

(* Copy the whole record stream out of physical memory (one address
   translation per page). V1 walks operate on this snapshot: records are
   variable-length and deltas need look-behind, so the stream is parsed
   as one contiguous fragment. *)
let snapshot_stream k ls =
  let len = length k ls in
  let mem = Machine.mem (Kernel.machine k) in
  let buf = Bytes.create len in
  let off = ref 0 in
  while !off < len do
    let chunk = min (Addr.page_size - Addr.page_offset !off) (len - !off) in
    let paddr = Kernel.paddr_of k ls ~off:!off in
    Physmem.blit_to_bytes mem ~src:paddr buf ~pos:!off ~len:chunk;
    off := !off + chunk
  done;
  buf

(* Fold over physical records — the stream's containers. Under V0 every
   container is one bare record; under V1 a container may carry a run of
   records (or none: version headers and pads). [next] is the offset just
   past the container. *)
let fold_phys k ls ~init ~f =
  match stream_version k ls with
  | Log_record.V1 ->
    let buf = snapshot_stream k ls in
    let acc = ref init in
    ignore
      (Log_record.Codec.scan buf ~pos:0 ~len:(Bytes.length buf)
         ~f:(fun ~off ~next rs -> acc := f !acc ~off ~next rs));
    !acc
  | Log_record.V0 ->
    let mem = Machine.mem (Kernel.machine k) in
    let len = length k ls in
    let rec go acc off =
      if off + Log_record.bytes > len then acc
      else
        let paddr = Kernel.paddr_of k ls ~off in
        let r = Log_record.decode_from mem ~paddr in
        go (f acc ~off ~next:(off + Log_record.bytes) [ r ]) (off + Log_record.bytes)
    in
    go init 0

let record_count k ls =
  match stream_version k ls with
  | Log_record.V0 -> length k ls / Log_record.bytes
  | Log_record.V1 ->
    fold_phys k ls ~init:0 ~f:(fun n ~off:_ ~next:_ rs -> n + List.length rs)

let read_at k ls ~off =
  match stream_version k ls with
  | Log_record.V0 ->
    let paddr = Kernel.paddr_of k ls ~off in
    Log_record.decode_from (Machine.mem (Kernel.machine k)) ~paddr
  | Log_record.V1 -> (
    match
      fold_phys k ls ~init:None ~f:(fun acc ~off:o ~next:_ rs ->
          match acc with
          | Some _ -> acc
          | None -> if o = off then (match rs with r :: _ -> Some r | [] -> None)
            else None)
    with
    | Some r -> r
    | None -> invalid_arg "Log_reader.read_at: no record at offset")

(* Charge the cache-model cost of reading [len] stream bytes at [off]. *)
let charge_read k ls ~off ~len =
  let m = Kernel.machine k in
  for w = 0 to ((len + Addr.word_size - 1) / Addr.word_size) - 1 do
    let paddr = Kernel.paddr_of k ls ~off:(off + (w * Addr.word_size)) in
    ignore (Machine.read m ~paddr ~size:4)
  done

let read_at_timed k ls ~off =
  match stream_version k ls with
  | Log_record.V0 ->
    let paddr = Kernel.paddr_of k ls ~off in
    let m = Kernel.machine k in
    for w = 0 to 3 do
      ignore (Machine.read m ~paddr:(paddr + (w * Addr.word_size)) ~size:4)
    done;
    Log_record.decode_from (Machine.mem m) ~paddr
  | Log_record.V1 ->
    let r = read_at k ls ~off in
    charge_read k ls ~off ~len:Log_record.bytes;
    r

let map k space ls =
  if Segment.kind ls <> Segment.Log then
    invalid_arg "Log_reader.map: not a log segment";
  let region = Kernel.create_region k ls in
  Kernel.bind k space region

let read_mapped k space ~base ~off =
  let word i = Kernel.read_word k space (base + off + (i * Addr.word_size)) in
  let buf = Bytes.create Log_record.bytes in
  for i = 0 to 3 do
    Bytes.set_int32_le buf (i * 4) (Int32.of_int (word i))
  done;
  Log_record.decode_bytes buf ~pos:0

let fold_v0 ?(start = 0) k ls ~init ~f =
  (* One logger sync for the whole walk ([length]), one address
     translation per page: records never straddle pages (the page size is
     a multiple of [Log_record.bytes]), so a cached page base serves all
     the records on it — including across extent boundaries, which are
     ordinary page boundaries of the backing segment. If [f] truncates or
     compacts the log mid-walk ([Kernel.rearm_log] bumps the segment
     generation), both the cached translation and the captured length are
     stale: records may have been bcopied to other pages and the tail
     recycled. On a generation change the walk re-reads [write_pos]
     (clamping the remaining span) and drops the page cache, so it never
     reads through a recycled extent's old mapping. *)
  let len = ref (length k ls) in
  let mem = Machine.mem (Kernel.machine k) in
  let generation = ref (Segment.generation ls) in
  let page = ref (-1) in
  let page_paddr = ref 0 in
  let rec go acc off =
    if Segment.generation ls <> !generation then begin
      generation := Segment.generation ls;
      page := -1;
      len := min !len (Segment.write_pos ls)
    end;
    if off + Log_record.bytes > !len then acc
    else begin
      let p = off / Addr.page_size in
      if p <> !page then begin
        page := p;
        page_paddr := Kernel.paddr_of k ls ~off:(p * Addr.page_size)
      end;
      let paddr = !page_paddr + Addr.page_offset off in
      go
        (f acc ~off (Log_record.decode_from mem ~paddr))
        (off + Log_record.bytes)
    end
  in
  go init start

let fold k ls ~init ~f =
  match stream_version k ls with
  | Log_record.V0 -> fold_v0 k ls ~init ~f
  | Log_record.V1 ->
    (* Logical records decoded from the stream snapshot; [off] is the
       containing physical record's offset. Mid-fold truncation is safe
       (the snapshot was captured first) but not observed. *)
    fold_phys k ls ~init ~f:(fun acc ~off ~next:_ rs ->
        List.fold_left (fun acc r -> f acc ~off r) acc rs)

let iter k ls ~f = fold k ls ~init:() ~f:(fun () ~off r -> f ~off r)

(* Incremental fold for appliers: only records stamped strictly past
   [ts], plus the high-water timestamp to feed back next tick. *)
let fold_from k ls ~ts ~init ~f =
  let last = ref ts in
  let wrap acc ~off (r : Log_record.t) =
    if r.Log_record.timestamp > ts then begin
      if r.Log_record.timestamp > !last then last := r.Log_record.timestamp;
      f acc ~off r
    end
    else acc
  in
  let acc =
    match stream_version k ls with
    | Log_record.V1 ->
      (* Variable-length containers: no random access, walk and filter. *)
      fold_phys k ls ~init ~f:(fun acc ~off ~next:_ rs ->
          List.fold_left (fun acc r -> wrap acc ~off r) acc rs)
    | Log_record.V0 ->
      (* Timestamps are nondecreasing in log order and V0 records are
         fixed-size: binary-search the first record past [ts] so an
         incremental applier never rescans the sealed prefix. *)
      let count = length k ls / Log_record.bytes in
      let lo = ref 0 and hi = ref count in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        let r = read_at k ls ~off:(mid * Log_record.bytes) in
        if r.Log_record.timestamp > ts then hi := mid else lo := mid + 1
      done;
      fold_v0 ~start:(!lo * Log_record.bytes) k ls ~init ~f:wrap
  in
  (acc, !last)

let to_list k ls =
  List.rev (fold k ls ~init:[] ~f:(fun acc ~off:_ r -> r :: acc))

let locate k (r : Log_record.t) =
  match Logger.hw (Machine.logger (Kernel.machine k)) with
  | Logger.Prototype -> (
    match
      Kernel.owner_of_frame k ~frame:(Addr.page_number r.Log_record.addr)
    with
    | None -> None
    | Some (seg, page) ->
      Some (seg, (page * Addr.page_size) + Addr.page_offset r.Log_record.addr))
  | Logger.On_chip ->
    (* on-chip records carry virtual addresses (Section 4.6) *)
    Kernel.find_mapping k ~vaddr:r.Log_record.addr

let vaddr_in ~base ~region seg off =
  if Segment.id (Region.segment region) <> Segment.id seg then None
  else
    let rel = off - Region.seg_offset region in
    if rel < 0 || rel >= Region.size region then None else Some (base + rel)
