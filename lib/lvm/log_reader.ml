open Lvm_machine
open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t

let length k ls =
  Kernel.sync_log k ls;
  Segment.write_pos ls

let record_count k ls = length k ls / Log_record.bytes

let read_at k ls ~off =
  let paddr = Kernel.paddr_of k ls ~off in
  Log_record.decode_from (Machine.mem (Kernel.machine k)) ~paddr

let read_at_timed k ls ~off =
  let paddr = Kernel.paddr_of k ls ~off in
  let m = Kernel.machine k in
  for w = 0 to 3 do
    ignore (Machine.read m ~paddr:(paddr + (w * Addr.word_size)) ~size:4)
  done;
  Log_record.decode_from (Machine.mem m) ~paddr

let map k space ls =
  if Segment.kind ls <> Segment.Log then
    invalid_arg "Log_reader.map: not a log segment";
  let region = Kernel.create_region k ls in
  Kernel.bind k space region

let read_mapped k space ~base ~off =
  let word i = Kernel.read_word k space (base + off + (i * Addr.word_size)) in
  let buf = Bytes.create Log_record.bytes in
  for i = 0 to 3 do
    Bytes.set_int32_le buf (i * 4) (Int32.of_int (word i))
  done;
  Log_record.decode_bytes buf ~pos:0

let fold k ls ~init ~f =
  (* One logger sync for the whole walk ([length]), one address
     translation per page: records never straddle pages (the page size is
     a multiple of [Log_record.bytes]), so a cached page base serves all
     the records on it — including across extent boundaries, which are
     ordinary page boundaries of the backing segment. If [f] truncates or
     compacts the log mid-walk ([Kernel.rearm_log] bumps the segment
     generation), both the cached translation and the captured length are
     stale: records may have been bcopied to other pages and the tail
     recycled. On a generation change the walk re-reads [write_pos]
     (clamping the remaining span) and drops the page cache, so it never
     reads through a recycled extent's old mapping. *)
  let len = ref (length k ls) in
  let mem = Machine.mem (Kernel.machine k) in
  let generation = ref (Segment.generation ls) in
  let page = ref (-1) in
  let page_paddr = ref 0 in
  let rec go acc off =
    if Segment.generation ls <> !generation then begin
      generation := Segment.generation ls;
      page := -1;
      len := min !len (Segment.write_pos ls)
    end;
    if off + Log_record.bytes > !len then acc
    else begin
      let p = off / Addr.page_size in
      if p <> !page then begin
        page := p;
        page_paddr := Kernel.paddr_of k ls ~off:(p * Addr.page_size)
      end;
      let paddr = !page_paddr + Addr.page_offset off in
      go
        (f acc ~off (Log_record.decode_from mem ~paddr))
        (off + Log_record.bytes)
    end
  in
  go init 0

let iter k ls ~f = fold k ls ~init:() ~f:(fun () ~off r -> f ~off r)

let to_list k ls =
  List.rev (fold k ls ~init:[] ~f:(fun acc ~off:_ r -> r :: acc))

let locate k (r : Log_record.t) =
  match Logger.hw (Machine.logger (Kernel.machine k)) with
  | Logger.Prototype -> (
    match
      Kernel.owner_of_frame k ~frame:(Addr.page_number r.Log_record.addr)
    with
    | None -> None
    | Some (seg, page) ->
      Some (seg, (page * Addr.page_size) + Addr.page_offset r.Log_record.addr))
  | Logger.On_chip ->
    (* on-chip records carry virtual addresses (Section 4.6) *)
    Kernel.find_mapping k ~vaddr:r.Log_record.addr

let vaddr_in ~base ~region seg off =
  if Segment.id (Region.segment region) <> Segment.id seg then None
  else
    let rel = off - Region.seg_offset region in
    if rel < 0 || rel >= Region.size region then None else Some (base + rel)
