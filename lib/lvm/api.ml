open Lvm_vm

type kernel = Kernel.t
type segment = Segment.t
type region = Region.t
type address_space = Address_space.t

module Error = Lvm_vm.Error

exception Lvm_error = Lvm_vm.Error.Lvm_error

module Config = struct
  type t = {
    obs : Lvm_obs.Ctx.t option;
    hw : Lvm_machine.Logger.hw;
    record_old_values : bool;
    frames : int;
    log_entries : int;
    cpus : int;
    codec : Lvm_machine.Log_record.version;
    coalesce_depth : int;
  }

  let default =
    { obs = None; hw = Lvm_machine.Logger.Prototype;
      record_old_values = false; frames = 4096; log_entries = 64; cpus = 1;
      codec = Lvm_machine.Log_record.V0; coalesce_depth = 0 }
end

let create (c : Config.t) =
  Kernel.create ?obs:c.Config.obs ~hw:c.Config.hw
    ~record_old_values:c.Config.record_old_values ~frames:c.Config.frames
    ~log_entries:c.Config.log_entries ~cpus:c.Config.cpus
    ~codec:c.Config.codec ~coalesce_depth:c.Config.coalesce_depth ()

let obs k = Kernel.obs k
let perf k = Kernel.snapshot k

let run config f =
  let k = create config in
  let result = f k in
  (result, perf k)

let address_space k = Kernel.create_space k
let std_segment ?manager k ~size = Kernel.create_segment ?manager k ~size
let std_region ?seg_offset ?size k segment =
  Kernel.create_region ?seg_offset ?size k segment

let bind k space ?vaddr region = Kernel.bind k space ?vaddr region

let log_segment ?mode ?(size = 16 * Lvm_machine.Addr.page_size) k =
  (* Every log segment handed out by the API is lifecycle-managed. *)
  Lvm_log.segment (Lvm_log.create ?mode k ~size)

let log k region ls = Kernel.set_region_log k region (Some ls)
let unlog k region = Kernel.set_region_log k region None
let set_logging k region enabled = Kernel.set_logging_enabled k region enabled
let extend_log k ls ~pages = Lvm_log.extend (Lvm_log.of_segment k ls) ~pages
let sync_log k ls = Kernel.sync_log k ls

let truncate_log k ls ~keep_from =
  Lvm_log.truncate (Lvm_log.of_segment k ls) ~keep_from

let truncate_log_suffix k ls ~new_end =
  Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end

let source_segment ?(offset = 0) k ~dst ~src =
  Kernel.declare_source k ~dst ~src ~offset

let reset_deferred_copy k space ~start ~len =
  Kernel.reset_deferred_copy k space ~start ~len

let dirty_spans k seg = Kernel.dirty_spans k seg

let read_word k space ~vaddr = Kernel.read_word k space vaddr
let write_word k space ~vaddr v = Kernel.write_word k space vaddr v
let read k space ~vaddr ~size = Kernel.read k space ~vaddr ~size
let write k space ~vaddr ~size v = Kernel.write k space ~vaddr ~size v
let compute k c = Kernel.compute k c
let time k = Kernel.time k
