(** The logged-virtual-memory application program interface.

    This is the OCaml rendering of the paper's C++ interface (Table 1).
    The example from Section 2.2, creating a logged region:

    {[
      let k = Api.create Api.Config.default in
      let space = Api.address_space k in
      let seg_a = Api.std_segment k ~size in        (* new StdSegment(size) *)
      let reg_r = Api.std_region k seg_a in         (* new StdRegion(seg_a) *)
      let ls = Api.log_segment k in                 (* new LogSegment() *)
      Api.log k reg_r ls;                           (* reg_r->log(ls) *)
      let base = Api.bind k space reg_r in          (* reg_r->bind(as) *)
      Api.write_word k space ~vaddr:(base + 16) 42  (* logged automatically *)
    ]}

    Invalid requests raise {!Lvm_error} carrying a typed {!Error.t}
    payload — match on the constructor rather than on exception message
    strings:

    {[
      match Api.read_word k space ~vaddr with
      | v -> use v
      | exception Api.Lvm_error (Api.Error.Segmentation_fault { vaddr; _ }) ->
        handle_segv vaddr
    ]} *)

type kernel = Lvm_vm.Kernel.t
type segment = Lvm_vm.Segment.t
type region = Lvm_vm.Region.t
type address_space = Lvm_vm.Address_space.t

module Error = Lvm_vm.Error
(** Typed error payloads (segmentation faults, alignment, range checks). *)

exception Lvm_error of Error.t
(** The one exception the API raises on invalid requests (an alias of
    [Lvm_vm.Error.Lvm_error], so handlers work at either layer). *)

(** Boot-time machine configuration.

    One record replaces the optional-argument sprawl of the retired
    [boot]/[with_kernel] wrappers; override the defaults with the
    functional-update syntax:

    {[
      let k = Api.create { Api.Config.default with frames = 256; cpus = 4 }
    ]} *)
module Config : sig
  type t = {
    obs : Lvm_obs.Ctx.t option;
        (** Observability context to share (default: a fresh one,
            announced to any attached [Lvm_obs.Collector]). *)
    hw : Lvm_machine.Logger.hw;
        (** Prototype bus logger (default) or the on-chip design of
            Section 4.6. *)
    record_old_values : bool;
        (** On-chip pre-image records (Section 4.6); requires
            [hw = On_chip]. *)
    frames : int;  (** Physical memory frames. *)
    log_entries : int;  (** Logger log-table entries. *)
    cpus : int;
        (** Processors sharing the bus, logger and frame pool
            (default 1). *)
    codec : Lvm_machine.Log_record.version;
        (** On-disk record-stream format the logger writes (default
            [V0], the seed's fixed 16-byte records — bit-identical
            output). [V1] is the versioned codec: an explicit stream
            header plus run/delta-compressed records. *)
    coalesce_depth : int;
        (** Logger write-coalescing buffer depth in records (default 0:
            no buffer, every store emits immediately). Repeated
            whole-word stores to the same address are absorbed until a
            flush — a commit, force or snapshot boundary drains the
            buffer. Incompatible with [record_old_values]. *)
  }

  val default : t
  (** [{ obs = None; hw = Prototype; record_old_values = false;
        frames = 4096; log_entries = 64; cpus = 1; codec = V0;
        coalesce_depth = 0 }] — exactly the machine the seed produced. *)
end

val create : Config.t -> kernel
(** Bring up a machine and its VM kernel as described by the
    configuration. [create Config.default] is the common case. *)

val run : Config.t -> (kernel -> 'a) -> 'a * Lvm_obs.Snapshot.t
(** [run config f] boots a kernel, runs [f] on it and returns [f]'s
    result together with the final counter snapshot — the convenient
    shape for measured one-shot workloads. *)

val address_space : kernel -> address_space
(** Create an address space ([thisProcess()->addressSpace()] analogue). *)

(** {1 Standard virtual memory functions (Table 1, part 1)} *)

val std_segment :
  ?manager:(segment -> int -> unit) -> kernel -> size:int -> segment
(** [new StdSegment(size)]; [manager] is the user-level page-fill hook
    (the SegmentMan argument). *)

val std_region : ?seg_offset:int -> ?size:int -> kernel -> segment -> region
(** [new StdRegion(segment)]. *)

val bind : kernel -> address_space -> ?vaddr:int -> region -> int
(** [Region::bind(as, virtAddr)], returning the bound base address. *)

(** {1 Extensions for logging (Table 1, part 2)} *)

val log_segment :
  ?mode:Lvm_machine.Logger.mode -> ?size:int -> kernel -> segment
(** [new LogSegment()]. Initial capacity defaults to 16 pages; extend in
    advance of the logger reaching the end with {!extend_log}. *)

val log : kernel -> region -> segment -> unit
(** [Region::log(ls)]: log records for all writes to the region appear in
    [ls]. *)

val unlog : kernel -> region -> unit
val set_logging : kernel -> region -> bool -> unit
val extend_log : kernel -> segment -> pages:int -> unit
val sync_log : kernel -> segment -> unit

val truncate_log : kernel -> segment -> keep_from:int -> unit
(** Discard records before byte offset [keep_from], compacting the rest
    to the front of the segment. *)

val truncate_log_suffix : kernel -> segment -> new_end:int -> unit
(** Discard records at and after byte offset [new_end]. *)

(** {1 Extensions for deferred copy (Table 1, part 3)} *)

val source_segment : ?offset:int -> kernel -> dst:segment -> src:segment ->
  unit
(** [Segment::sourceSegment(source, offset)]. *)

val reset_deferred_copy : kernel -> address_space -> start:int -> len:int ->
  unit
(** [AddressSpace::resetDeferredCopy(start, end)]. *)

(** {1 Extensions for failure-atomic snapshots (beyond the paper)} *)

val dirty_spans : kernel -> segment -> (int * int) list
(** Byte [(off, len)] runs of a deferred-copy destination segment
    modified since its deferred-copy state was last reset, ascending and
    coalesced — the modification set at the line granularity the
    second-level cache tracks. This is the enumeration hook the
    failure-atomic snapshot layer ([Lvm_fams]) builds its redo records
    from; [Lvm_fams] itself lives above this library (it also needs the
    RVM write-ahead log) and is the intended entry point for
    applications. *)

(** {1 Access}

    All access functions name the virtual address with [~vaddr]; sizes
    are 1, 2 or 4 bytes and accesses must be size-aligned. *)

val read_word : kernel -> address_space -> vaddr:int -> int
val write_word : kernel -> address_space -> vaddr:int -> int -> unit
val read : kernel -> address_space -> vaddr:int -> size:int -> int
val write : kernel -> address_space -> vaddr:int -> size:int -> int -> unit

val compute : kernel -> int -> unit
(** Burn CPU cycles (application compute between memory operations). *)

val time : kernel -> int
(** Current machine cycle count. *)

(** {1 Observability} *)

val obs : kernel -> Lvm_obs.Ctx.t
(** The kernel's observability context: structured event trace,
    counters and histograms (see [Lvm_obs] and docs/OBSERVABILITY.md). *)

val perf : kernel -> Lvm_obs.Snapshot.t
(** Snapshot of every counter — machine perf record and [kernel.*]
    counters. Use [Lvm_obs.Snapshot.delta] to measure a workload. *)
