type t =
  | Vm of Lvm_vm.Error.t
  | Overloaded of { shard : int }
  | Txn_too_large of { writes : int; limit : int }
  | Invalid_key of { key : int }
  | Shed of { shard : int }
  | Moved of { key : int; shard : int }
  | Snapshot_unavailable of { ts : int; floor : int; frontier : int }

let of_vm e = Vm e

let to_string = function
  | Vm e -> Lvm_vm.Error.to_string e
  | Overloaded { shard } -> Printf.sprintf "overloaded(shard %d)" shard
  | Txn_too_large { writes; limit } ->
    Printf.sprintf "txn too large (%d writes, limit %d)" writes limit
  | Invalid_key { key } -> Printf.sprintf "invalid key %d" key
  | Shed { shard } -> Printf.sprintf "shed(shard %d)" shard
  | Moved { key; shard } -> Printf.sprintf "moved(key %d -> shard %d)" key shard
  | Snapshot_unavailable { ts; floor; frontier } ->
    Printf.sprintf "snapshot unavailable (ts %d, readable [%d, %d])" ts floor
      frontier

let pp ppf e = Format.pp_print_string ppf (to_string e)

let guard f =
  try Ok (f ()) with Lvm_vm.Error.Lvm_error e -> Error (Vm e)
