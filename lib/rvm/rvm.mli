(** Coda-style recoverable virtual memory: the [set_range] baseline.

    The application must bracket every modification of recoverable memory
    with {!set_range} so the library can save the old value (for abort)
    and build the redo record (for commit) — the error-prone annotation
    burden Section 2.5 describes. On commit the redo records are forced to
    the RAM-disk write-ahead log; truncation folds the log into the disk
    image when it grows past a threshold.

    With [~strict:false] unannotated writes are permitted and silently
    unrecoverable, reproducing the classic missed-[set_range] bug for the
    failure-injection tests. *)

type t

exception Unannotated_write of { off : int }
exception No_transaction
exception Transaction_open

(** Configuration record; override {!Config.default} with the
    functional-update syntax. *)
module Config : sig
  type t = {
    strict : bool;
        (** Reject writes not covered by a {!set_range} (the library's
            contract); [false] reproduces the missed-annotation bug. *)
  }

  val default : t
  (** [{ strict = true }]. *)
end

val make :
  Config.t -> Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int -> t
(** Map a recoverable segment of [size] bytes backed by a fresh RAM disk. *)

val kernel : t -> Lvm_vm.Kernel.t
val base : t -> int
(** Base virtual address of the mapped recoverable segment. *)

val size : t -> int
val disk : t -> Ramdisk.t
val in_txn : t -> bool

val begin_txn : t -> unit
val set_range : t -> off:int -> len:int -> unit
(** Declare the next modification; saves the old value and pre-builds the
    redo record (the dominant per-write cost, Table 3). *)

val read_word : t -> off:int -> int
val write_word : t -> off:int -> int -> unit
(** @raise Unannotated_write in strict mode if [off] is not covered by a
    [set_range] of the open transaction. *)

val commit : t -> unit
(** Force redo records and the commit entry to the write-ahead log, then
    truncate it if past the threshold. *)

val abort : t -> unit
(** Restore every saved old value. *)

val crash_and_recover : t -> unit
(** Simulate a crash: the in-memory segment is lost and reloaded from the
    RAM disk's recovered (last-committed) state; any open transaction
    vanishes. *)
