open Lvm_machine
open Lvm_vm

exception No_transaction
exception Transaction_open

type t = {
  k : Kernel.t;
  space : Address_space.t;
  working : Segment.t;
  committed : Segment.t;
  region : Region.t;
  ls : Segment.t;
  log : Lvm_log.t; (* lifecycle handle over [ls] *)
  base : int;
  size : int; (* usable bytes; the txn cell lives at [size] *)
  disk : Ramdisk.t;
  batcher : Lvm_log.Batcher.batcher;
  max_log_pages : int;
  mutable current : int option;
  mutable next_txn : int;
  mutable txn_absorbed_base : int;
      (* [Segment.absorbed_crossings ls] at [begin_txn]: if it grows, part
         of the transaction's redo information was absorbed (lost), even
         when a later [extend_log] resumed logging. *)
}

let cell_off t = t.size

module Config = struct
  type t = {
    log_pages : int;
    max_log_pages : int option;
    group : int;
  }

  let default = { log_pages = 32; max_log_pages = None; group = 1 }
end

(* Worst case a single transaction can log: one 16-byte record per word
   of the segment, plus the begin/end writes of the transaction cell.
   Under the V1 codec the stream also carries its version header and
   worst-case page-boundary pads. *)
let worst_case_log_bytes ?(version = Log_record.V0) ~size () =
  let writes = (size / Addr.word_size) + 2 in
  match version with
  | Log_record.V0 -> writes * Lvm_machine.Log_record.bytes
  | Log_record.V1 -> Log_record.Codec.worst_case_bytes ~writes

let make (config : Config.t) k space ~size =
  let { Config.log_pages; max_log_pages; group } = config in
  if size <= 0 || size mod Addr.word_size <> 0 then
    Error.raise_
      (Error.Invalid
         { op = "Rlvm.create";
           reason = "size must be a positive word multiple" });
  if log_pages <= 0 then
    Error.raise_
      (Error.Out_of_range
         { op = "Rlvm.create"; what = "log_pages"; value = log_pages });
  if group < 1 then
    Error.raise_
      (Error.Out_of_range { op = "Rlvm.create"; what = "group"; value = group });
  let max_log_pages =
    match max_log_pages with Some m -> max m log_pages | None -> 2 * log_pages
  in
  let capacity = log_pages * Addr.page_size in
  let version = Logger.codec (Machine.logger (Kernel.machine k)) in
  let requested = worst_case_log_bytes ~version ~size () in
  if requested > capacity then
    Error.raise_ (Error.Log_capacity { op = "Rlvm.create"; requested;
                                       capacity });
  let seg_size = size + Addr.word_size in
  let working = Kernel.create_segment k ~size:seg_size in
  let committed = Kernel.create_segment k ~size:seg_size in
  Kernel.declare_source k ~dst:working ~src:committed ~offset:0;
  let region = Kernel.create_region k working in
  let log = Lvm_log.create k ~size:capacity in
  let ls = Lvm_log.segment log in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k space region in
  let disk = Ramdisk.create k ~size in
  (* With group > 1 the WAL tail is volatile until the batcher forces it:
     a crash loses the unforced commits, which is the deal group commit
     makes. Group 1 (the default) forces every commit, exactly the
     ungrouped behavior. *)
  Ramdisk.set_volatile_tail disk (group > 1);
  let batcher =
    Lvm_log.Batcher.create ~obs:(Kernel.obs k) ~group
      ~force:(fun () -> Ramdisk.wal_force disk)
      ()
  in
  { k; space; working; committed; region; ls; log; base; size; disk; batcher;
    max_log_pages; current = None; next_txn = 1; txn_absorbed_base = 0 }

let kernel t = t.k
let base t = t.base
let size t = t.size
let disk t = t.disk
let log_segment t = t.ls
let log t = t.log
let in_txn t = t.current <> None
let last_txn_id t = t.next_txn - 1
let group t = Lvm_log.Batcher.group t.batcher
let pending_commits t = Lvm_log.Batcher.pending t.batcher
let flush_commits t = Lvm_log.Batcher.flush t.batcher

(* Backpressure: before a logged store, make sure its record cannot run
   the log segment off its last page. [reserve_log_room] extends the
   segment (graceful degradation) until [max_log_pages], then raises a
   typed [Log_exhausted] — before the store, so no record is silently
   absorbed into the default log page. [sync_log]-based, so it costs no
   cycles on the common path. *)
let reserve t =
  Lvm_log.reserve t.log ~bytes:Lvm_machine.Log_record.bytes
    ~max_pages:t.max_log_pages

let begin_txn t =
  if t.current <> None then raise Transaction_open;
  let id = t.next_txn in
  t.next_txn <- id + 1;
  t.current <- Some id;
  reserve t;
  t.txn_absorbed_base <- Segment.absorbed_crossings t.ls;
  (* the special logged location marking the transaction (Section 2.5) *)
  Kernel.write_word t.k t.space (t.base + cell_off t) id

let check_off t off =
  if off < 0 || off + 4 > t.size then
    Error.raise_ (Error.Out_of_segment { segment = Segment.id t.working; off })

let read_word t ~off =
  check_off t off;
  Kernel.read_word t.k t.space (t.base + off)

let write_word t ~off v =
  if t.current = None then raise No_transaction;
  check_off t off;
  reserve t;
  Kernel.compute t.k Rvm_costs.rlvm_write_overhead;
  Kernel.write_word t.k t.space (t.base + off) v

let value_bytes (r : Log_record.t) =
  let b = Bytes.create r.Log_record.size in
  (match r.Log_record.size with
  | 1 -> Bytes.set b 0 (Char.chr (r.Log_record.value land 0xFF))
  | 2 -> Bytes.set_uint16_le b 0 (r.Log_record.value land 0xFFFF)
  | _ -> Bytes.set_int32_le b 0 (Int32.of_int r.Log_record.value));
  b

let commit ?(pace = fun () -> ()) t =
  let id = match t.current with None -> raise No_transaction | Some i -> i in
  (* If the logger fell back to absorbing records into the default log
     page, part of this transaction's redo information is already lost:
     committing would write an incomplete transaction to the WAL. This
     holds even if a later [extend_log] resumed logging: any absorbed
     crossing during the transaction is unrecoverable loss. *)
  Kernel.sync_log t.k t.ls;
  if Segment.absorbing t.ls
     || Segment.absorbed_crossings t.ls > t.txn_absorbed_base
  then
    Error.raise_
      (Error.Log_exhausted
         { segment = Segment.id t.ls; pos = Segment.write_pos t.ls;
           capacity = Segment.size t.ls });
  (* Build redo records for the write-ahead log straight from the LVM
     log — the records are already there; no set_range bookkeeping. *)
  (match Lvm_log.stream_version t.log with
  | Log_record.V0 ->
    Lvm.Log_reader.iter t.k t.ls ~f:(fun ~off:_ r ->
        pace ();
        match
          if r.Log_record.pre_image then None else Lvm.Log_reader.locate t.k r
        with
        | Some (seg, off)
          when Segment.id seg = Segment.id t.working && off < t.size ->
          Ramdisk.wal_append t.disk
            (Ramdisk.Data { txn = id; off; bytes = value_bytes r })
        | Some _ | None -> ())
  | Log_record.V1 ->
    (* Encoded WAL path: collect the transaction's redo writes in log
       order, squash repeated whole-word stores (epoch coalescing — only
       the final value of each word needs to reach the WAL), and
       serialize the survivors as one compact V1 stream. Record
       timestamps are normalized to the transaction id: redo replay is
       positional, and equal timestamps let sequential stores group into
       runs and same-line rewrites into deltas. *)
    let writes = ref [] in
    Lvm.Log_reader.iter t.k t.ls ~f:(fun ~off:_ r ->
        pace ();
        match
          if r.Log_record.pre_image then None else Lvm.Log_reader.locate t.k r
        with
        | Some (seg, off)
          when Segment.id seg = Segment.id t.working && off < t.size ->
          writes :=
            { Lvm_log.Coalescer.off; size = r.Log_record.size;
              value = r.Log_record.value; timestamp = id }
            :: !writes
        | Some _ | None -> ());
    let squashed, _absorbed =
      Lvm_log.Coalescer.squash (List.rev !writes)
    in
    if squashed <> [] then begin
      let records =
        List.map
          (fun { Lvm_log.Coalescer.off; size; value; timestamp } ->
            { Log_record.addr = off; value; size; pre_image = false;
              timestamp })
          squashed
      in
      let payload = Log_record.Codec.encode_stream records in
      Ramdisk.wal_append t.disk (Ramdisk.Encoded { txn = id; payload })
    end);
  Ramdisk.wal_append t.disk (Ramdisk.Commit { txn = id });
  (* group commit: force once per batch (group 1 forces right here) *)
  Lvm_log.Batcher.note_commit t.batcher;
  (* The force is a large pure-compute charge; yield before the CULT's
     timed accesses so a concurrent scheduler can keep event order. *)
  pace ();
  (* Fold the transaction into the committed image and truncate the log. *)
  ignore
    (Lvm.Checkpoint.cult_all t.k ~working:t.working ~checkpoint:t.committed
       ~log:t.ls);
  t.current <- None;
  Kernel.write_word t.k t.space (t.base + cell_off t) 0;
  (* WAL truncation applies records to the image, so it must not run past
     an unforced tail: wait until the batch is flushed. *)
  if Lvm_log.Batcher.pending t.batcher = 0 && Ramdisk.should_truncate t.disk
  then Ramdisk.truncate t.disk

let abort t =
  if t.current = None then raise No_transaction;
  (* Writes of the aborted transaction may still sit in the logger's
     coalescing buffer; drop them so they cannot flush into the fresh
     log later. *)
  Logger.discard_coalesced (Machine.logger (Kernel.machine t.k));
  Kernel.set_logging_enabled t.k t.region false;
  Kernel.reset_deferred_copy t.k t.space ~start:t.base
    ~len:(Region.size t.region);
  (if Segment.absorbing t.ls then Segment.set_absorbing t.ls false);
  Lvm_log.truncate_suffix t.log ~new_end:0;
  Kernel.set_logging_enabled t.k t.region true;
  t.current <- None;
  Kernel.write_word t.k t.space (t.base + cell_off t) 0

let recover t =
  t.current <- None;
  Logger.discard_coalesced (Machine.logger (Kernel.machine t.k));
  Lvm_log.Batcher.reset t.batcher;
  let image, report = Ramdisk.recover t.disk in
  Kernel.set_logging_enabled t.k t.region false;
  (if Segment.absorbing t.ls then Segment.set_absorbing t.ls false);
  Lvm_log.truncate_suffix t.log ~new_end:0;
  for off = 0 to t.size - 1 do
    let byte = Char.code (Bytes.get image off) in
    Kernel.seg_write_raw t.k t.committed ~off ~size:1 byte;
    Kernel.seg_write_raw t.k t.working ~off ~size:1 byte
  done;
  Kernel.reset_deferred_segment t.k t.working;
  Kernel.set_logging_enabled t.k t.region true;
  report

let crash_and_recover t = ignore (recover t)
