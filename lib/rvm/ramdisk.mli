(** RAM-disk backing store for recoverable memory.

    Holds the persistent image of a recoverable segment plus a serialized
    write-ahead log of redo records. The TPC-A measurements in the paper
    use a RAM disk to hold the log (Table 3), so "disk" operations here
    are charged as driver overhead plus per-word memory copies rather
    than I/O latencies; the charges follow the paper's RVM record sizes
    (value bytes + 12, 8 per commit) independent of the physical
    serialization.

    On disk each record is little-endian words — magic ["WAL1"], kind
    (0 data / 1 commit / 2 snapshot boundary / 3 encoded redo), transaction
    id, image offset, payload length,
    an FNV-1a checksum over (kind, txn, off, len, payload) — followed by
    the payload. Recovery fail-stops at the first record whose header or
    checksum does not parse, so a torn or corrupted tail is detected and
    truncated rather than replayed.

    Crash semantics for testing: a crash discards nothing here — the RAM
    disk {e is} the durable store — while the in-memory recoverable
    segment is considered lost; {!recover} reconstructs the durable state
    as of the last committed transaction.

    Fault injection: when the owning machine has a fault plan installed
    ({!Lvm_machine.Machine.set_fault_plan}), {!wal_append} consults the
    [Ramdisk_write] site — [Crash] dies before any byte is durable,
    [Torn_write] appends a prefix of the serialized record and dies,
    [Failed_write] silently loses the record, [Bit_flip] corrupts one bit
    of the just-written record — and {!wal_force} consults
    [Ramdisk_force]. *)

type t

type entry =
  | Data of { txn : int; off : int; bytes : Bytes.t }
      (** Redo record: new value of [bytes] at image offset [off]. *)
  | Commit of { txn : int }
  | Snapshot of { snap : int }
      (** Failure-atomic snapshot boundary (kind 2): commits every [Data]
          record carrying [snap] as its transaction id. A snapshot whose
          boundary never reached the disk is torn — its data records are
          never applied, and recovery truncates back to the last intact
          boundary exactly as it does for an uncommitted transaction. *)
  | Encoded of { txn : int; payload : Bytes.t }
      (** Compact redo (kind 3): the payload is a
          {!Lvm_machine.Log_record.Codec} V1 stream (version header plus
          run/delta/raw records) whose record addresses are image byte
          offsets — a whole transaction's redo in one WAL record. Commits
          exactly like [Data] (gated on kind 1/2 markers); old logs
          without kind 3 records recover unchanged, and charged bytes
          follow the encoded payload size — the WAL-side bandwidth diet. *)

val create : Lvm_vm.Kernel.t -> size:int -> t
(** An all-zero image of [size] bytes. *)

val size : t -> int

val image_read : t -> off:int -> len:int -> Bytes.t
(** Untimed image read (used at mapping and recovery time). *)

val wal_append : t -> entry -> unit
(** Serialize and append a redo or commit record, charging driver
    overhead and the copy at the cost model's record size. *)

val wal_force : t -> unit
(** Force the log: the fixed commit-synchronization cost. Marks every
    appended byte durable and bumps the ["rvm.wal_forces"] counter. *)

val set_volatile_tail : t -> bool -> unit
(** Group-commit crash semantics: when on, bytes appended since the last
    {!wal_force} are {e not} durable — {!recover} and {!recovered_image}
    discard them, replaying only to the last fully-forced batch. Off by
    default, preserving the seed's every-append-durable behavior. *)

val forced_bytes : t -> int
(** Physical log bytes covered by the last force. *)

val wal_bytes : t -> int
(** Cost-model bytes of live log (the paper's record sizes). *)

val log_bytes : t -> int
(** Physical bytes of serialized log, torn tail included. *)

val durable_bytes : t -> int
(** Physical log bytes a crash would preserve: [log_bytes] with the
    default every-append-durable semantics, clamped to {!forced_bytes}
    when {!set_volatile_tail} is on (group commit). *)

val wal_fold :
  t -> off:int -> init:'a -> f:('a -> off:int -> entry -> 'a) -> 'a * int
(** Untimed incremental walk for log-tailing consumers (the MVCC
    applier): parse whole intact records starting at byte offset [off],
    never reading past {!durable_bytes}, and stop silently at the first
    byte that does not parse — a half-appended or unforced tail is "not
    yet", not an error. Returns the accumulator and the offset of the
    first unconsumed byte, the resume point for the next call. [off]
    must be a record boundary previously returned by [wal_fold] (or 0);
    after a {!truncate} or {!recover} rebuilt the log, stale offsets are
    invalid — resync via {!set_on_truncate}. *)

val should_truncate : t -> bool
(** The WAL has grown past the truncation threshold. *)

val truncate : t -> unit
(** Apply all committed entries to the image and clear the log, charging
    truncation costs. Uncommitted entries are preserved (there is at most
    one open transaction). *)

val recovered_image : t -> Bytes.t
(** The image with every {e committed} intact WAL record applied — what
    recovery after a crash reconstructs, without repairing the log.
    Untimed (recovery time is not part of any reproduced measurement). *)

type recovery = {
  scanned : int;  (** Intact records parsed before the scan stopped. *)
  committed : int;  (** Committed transactions found. *)
  replayed : int;  (** Data records applied to the image. *)
  truncated_bytes : int;  (** Torn/corrupt tail bytes discarded. *)
  torn : string option;
      (** Why the scan fail-stopped ("short header", "bad magic", "short
          payload", "checksum mismatch", "bad record kind"), if it did. *)
}

val recover : t -> Bytes.t * recovery
(** Crash recovery: scan the log, detect and truncate any torn tail
    (tracing [Wal_torn]), replay committed records onto a copy of the
    image (absolute values, so replay is idempotent) and trace a
    [Recovery] event. Returns the recovered image and the report. The
    log is physically rewritten to its intact prefix, so recovery is
    itself idempotent. *)

val recovery_to_string : recovery -> string

val entry_count : t -> int
(** Intact records currently in the log. *)

(** {1 Log shipping}

    The serialized WAL byte stream doubles as the replication stream
    (see [Lvm_repl]): a primary ships whole records to replicas, which
    append them verbatim with {!log_append_raw} and recover committed
    state through the ordinary {!recover} path. All of these are
    untimed — the transport simulation keeps its own clock. *)

val log_read : t -> off:int -> len:int -> Bytes.t
(** Raw serialized log bytes, for shipping. *)

val log_append_raw : t -> Bytes.t -> unit
(** Append bytes received from a peer. The payload must be whole
    serialized records; they count into {!entry_count}/{!wal_bytes} and
    are durable on arrival ({!forced_bytes} advances with them). *)

val load_state : t -> image:Bytes.t -> log:Bytes.t -> unit
(** Full-state resync: replace the image and the log wholesale (a
    replica that fell behind a recycled stream, or a freshly promoted
    primary folding its log into the image). [image] must be exactly
    {!size} bytes; [log] must be whole serialized records. *)

val set_truncate_gate : t -> (unit -> bool) option -> unit
(** Install a low-water gate consulted by {!should_truncate}: while the
    gate returns [false], the WAL is never recycled — the replication
    layer's "never recycle bytes an attached replica hasn't acked"
    rule. [None] (the default) restores unconditional truncation. *)

val set_on_truncate : t -> (removed:int -> unit) option -> unit
(** Observe every {!truncate} with the count of physical log bytes it
    consumed, so a shipping layer can maintain cumulative logical
    stream offsets across recycling. *)
