open Lvm_machine
open Lvm_vm

type entry =
  | Data of { txn : int; off : int; bytes : Bytes.t }
  | Commit of { txn : int }
  | Snapshot of { snap : int }
  | Encoded of { txn : int; payload : Bytes.t }
      (* kind 3: a V1 codec stream (version header + records) whose
         record addresses are image byte offsets — one compact record
         for a whole transaction's worth of redo *)

type t = {
  k : Kernel.t;
  image : Bytes.t;
  mutable log : Bytes.t; (* serialized WAL, first [log_len] bytes live *)
  mutable log_len : int;
  mutable forced_len : int; (* bytes known durable: forced to the disk *)
  mutable volatile_tail : bool; (* crash discards bytes past forced_len *)
  mutable charged_bytes : int; (* legacy cost-model accounting *)
  mutable entries : int;
  mutable truncate_gate : (unit -> bool) option;
      (* replication low-water mark: recycling the WAL is forbidden
         while an attached replica has not acked its bytes *)
  mutable on_truncate : (removed:int -> unit) option;
      (* observer of physical bytes consumed by truncation, so a
         log-shipping layer can keep its cumulative stream offsets *)
  c_forces : Lvm_obs.Counter.counter;
}

let create k ~size =
  if size <= 0 then
    Error.raise_
      (Error.Invalid { op = "Ramdisk.create"; reason = "size must be positive" });
  { k; image = Bytes.make size '\000'; log = Bytes.create 4096; log_len = 0;
    forced_len = 0; volatile_tail = false; charged_bytes = 0; entries = 0;
    truncate_gate = None; on_truncate = None;
    c_forces = Lvm_obs.Ctx.counter (Kernel.obs k) "rvm.wal_forces" }

let set_volatile_tail t v = t.volatile_tail <- v
let set_truncate_gate t g = t.truncate_gate <- g
let set_on_truncate t f = t.on_truncate <- f

let size t = Bytes.length t.image

let image_read t ~off ~len =
  if off < 0 || off + len > size t then
    Error.raise_
      (Error.Out_of_range { op = "Ramdisk.image_read"; what = "offset";
                            value = off });
  Bytes.sub t.image off len

let words bytes = (bytes + 3) / 4

(* The cost model charges the record sizes of the paper's RVM log (value
   bytes + 12 bytes of redo header, 8 bytes per commit), independent of
   the on-disk serialization below. *)
let entry_bytes = function
  | Data { bytes; _ } -> Bytes.length bytes + 12
  | Encoded { payload; _ } -> Bytes.length payload + 12
  | Commit _ | Snapshot _ -> 8

(* {1 On-disk serialization}

   Little-endian words: magic "WAL1", kind (0 data / 1 commit), txn, off,
   payload length, FNV-1a checksum over (kind, txn, off, len, payload),
   then the payload. Recovery fail-stops at the first record whose header
   or checksum does not parse: anything past it is a torn tail. *)

let wal_magic = 0x57414C31 (* "WAL1" *)
let header_bytes = 24

let fnv_prime = 16777619
let fnv_offset = 0x811C9DC5
let mask32 = 0xFFFFFFFF

let fnv_byte h b = (b lxor h) * fnv_prime land mask32
let fnv_word h w =
  let h = fnv_byte h (w land 0xFF) in
  let h = fnv_byte h ((w lsr 8) land 0xFF) in
  let h = fnv_byte h ((w lsr 16) land 0xFF) in
  fnv_byte h ((w lsr 24) land 0xFF)

let checksum ~kind ~txn ~off ~len payload =
  let h = fnv_word fnv_offset kind in
  let h = fnv_word h txn in
  let h = fnv_word h off in
  let h = fnv_word h len in
  let h = ref h in
  Bytes.iter (fun c -> h := fnv_byte !h (Char.code c)) payload;
  !h

let get32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land mask32
let set32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)

let serialize entry =
  let kind, txn, off, payload =
    match entry with
    | Data { txn; off; bytes } -> (0, txn, off, bytes)
    | Commit { txn } -> (1, txn, 0, Bytes.empty)
    | Snapshot { snap } -> (2, snap, 0, Bytes.empty)
    | Encoded { txn; payload } -> (3, txn, 0, payload)
  in
  let len = Bytes.length payload in
  let b = Bytes.create (header_bytes + len) in
  set32 b 0 wal_magic;
  set32 b 4 kind;
  set32 b 8 txn;
  set32 b 12 off;
  set32 b 16 len;
  set32 b 20 (checksum ~kind ~txn ~off ~len payload);
  Bytes.blit payload 0 b header_bytes len;
  b

let log_bytes t = t.log_len
let forced_bytes t = t.forced_len

let append_raw t src ~len =
  let need = t.log_len + len in
  if need > Bytes.length t.log then begin
    let log = Bytes.make (max need (2 * Bytes.length t.log)) '\000' in
    Bytes.blit t.log 0 log 0 t.log_len;
    t.log <- log
  end;
  Bytes.blit src 0 t.log t.log_len len;
  t.log_len <- t.log_len + len

(* {1 Scanning} *)

type scan = {
  s_entries : entry list; (* oldest first *)
  s_valid_end : int; (* bytes of intact record prefix *)
  s_torn : string option; (* why the scan fail-stopped, if it did *)
}

let scan t =
  let n = t.log_len in
  let data = t.log in
  let rec go pos acc =
    if pos = n then
      { s_entries = List.rev acc; s_valid_end = pos; s_torn = None }
    else if n - pos < header_bytes then stop pos acc "short header"
    else if get32 data pos <> wal_magic then stop pos acc "bad magic"
    else
      let kind = get32 data (pos + 4) in
      let txn = get32 data (pos + 8) in
      let off = get32 data (pos + 12) in
      let len = get32 data (pos + 16) in
      let ck = get32 data (pos + 20) in
      if len > n - pos - header_bytes then stop pos acc "short payload"
      else
        let payload = Bytes.sub data (pos + header_bytes) len in
        if checksum ~kind ~txn ~off ~len payload <> ck then
          stop pos acc "checksum mismatch"
        else
          let entry =
            match kind with
            | 0 -> Some (Data { txn; off; bytes = payload })
            | 1 -> Some (Commit { txn })
            | 2 -> Some (Snapshot { snap = txn })
            | 3 -> Some (Encoded { txn; payload })
            | _ -> None
          in
          match entry with
          | None -> stop pos acc "bad record kind"
          | Some e -> go (pos + header_bytes + len) (e :: acc)
  and stop pos acc reason =
    { s_entries = List.rev acc; s_valid_end = pos; s_torn = Some reason }
  in
  go 0 []

let entry_count t = List.length (scan t).s_entries
let wal_bytes t = t.charged_bytes

(* With a volatile tail (group commit), bytes appended since the last
   force never reached the disk: a crash loses them, so recovery must not
   see them. With [volatile_tail] off (group 1, the default) every append
   is treated as durable, exactly the pre-group-commit semantics. *)
let durable_len t =
  if t.volatile_tail then min t.log_len t.forced_len else t.log_len

let durable_bytes t = durable_len t

(* Incremental record walk for a log-tailing consumer (the MVCC applier):
   parse intact records from [off] up to the durable frontier, stopping —
   without error — at the first byte that does not parse as a whole
   record. A half-appended tail is simply "not yet": the consumer resumes
   from the returned offset once more bytes are appended/forced. *)
let wal_fold t ~off ~init ~f =
  let n = durable_len t in
  let data = t.log in
  let rec go pos acc =
    if n - pos < header_bytes then (acc, pos)
    else if get32 data pos <> wal_magic then (acc, pos)
    else
      let kind = get32 data (pos + 4) in
      let txn = get32 data (pos + 8) in
      let off' = get32 data (pos + 12) in
      let len = get32 data (pos + 16) in
      let ck = get32 data (pos + 20) in
      if len > n - pos - header_bytes then (acc, pos)
      else
        let payload = Bytes.sub data (pos + header_bytes) len in
        if checksum ~kind ~txn ~off:off' ~len payload <> ck then (acc, pos)
        else
          let entry =
            match kind with
            | 0 -> Some (Data { txn; off = off'; bytes = payload })
            | 1 -> Some (Commit { txn })
            | 2 -> Some (Snapshot { snap = txn })
            | 3 -> Some (Encoded { txn; payload })
            | _ -> None
          in
          match entry with
          | None -> (acc, pos)
          | Some e -> go (pos + header_bytes + len) (f acc ~off:pos e)
  in
  if off >= n then (init, off) else go off init

(* {1 Log shipping}

   Raw, untimed access to the serialized log for the replication layer:
   the WAL byte stream is the replication stream, shipped in units of
   whole records and applied verbatim on a replica's disk. Cycle costs
   are not charged — the transport simulation has its own clock. *)

let log_read t ~off ~len =
  if off < 0 || len < 0 || off + len > t.log_len then
    Error.raise_
      (Error.Out_of_range { op = "Ramdisk.log_read"; what = "offset";
                            value = off });
  Bytes.sub t.log off len

(* Recompute [entries]/[charged_bytes] for bytes received from a peer:
   the payload is whole serialized records, so a header walk suffices. *)
let charge_parsed t ~from =
  let rec go pos =
    if t.log_len - pos >= header_bytes && get32 t.log pos = wal_magic then begin
      let kind = get32 t.log (pos + 4) in
      let len = get32 t.log (pos + 16) in
      if len <= t.log_len - pos - header_bytes then begin
        t.entries <- t.entries + 1;
        t.charged_bytes <-
          t.charged_bytes + (if kind = 0 || kind = 3 then len + 12 else 8);
        go (pos + header_bytes + len)
      end
    end
  in
  go from

let log_append_raw t payload =
  let from = t.log_len in
  append_raw t payload ~len:(Bytes.length payload);
  charge_parsed t ~from;
  (* received bytes are durable on arrival: the replica's disk plays the
     role of the primary's forced log *)
  t.forced_len <- t.log_len

let load_state t ~image ~log =
  if Bytes.length image <> size t then
    Error.raise_
      (Error.Invalid
         { op = "Ramdisk.load_state";
           reason = "image size must match the disk" });
  Bytes.blit image 0 t.image 0 (size t);
  t.log_len <- 0;
  t.entries <- 0;
  t.charged_bytes <- 0;
  append_raw t log ~len:(Bytes.length log);
  charge_parsed t ~from:0;
  t.forced_len <- t.log_len

(* {1 The write path, with fault injection} *)

let machine t = Kernel.machine t.k

let wal_append t entry =
  (match entry with
  | Data { off; bytes; _ } ->
    if off < 0 || off + Bytes.length bytes > size t then
      Error.raise_
        (Error.Out_of_range { op = "Ramdisk.wal_append"; what = "offset";
                              value = off })
  | Encoded { payload; _ } ->
    let records, _ =
      Log_record.Codec.decode_fragment payload ~pos:0
        ~len:(Bytes.length payload)
    in
    List.iter
      (fun (r : Log_record.t) ->
        if r.Log_record.addr < 0 || r.Log_record.addr + r.Log_record.size > size t
        then
          Error.raise_
            (Error.Out_of_range { op = "Ramdisk.wal_append"; what = "offset";
                                  value = r.Log_record.addr }))
      records
  | Commit _ | Snapshot _ -> ());
  let legacy = entry_bytes entry in
  Kernel.compute t.k (Rvm_costs.disk_op_overhead
                      + (words legacy * Rvm_costs.disk_per_word));
  (* [fault_check] raises on an injected [Crash]: the machine dies before
     any byte of the record reaches the disk. *)
  let fault = Machine.fault_check (machine t) ~site:Lvm_fault.Fault.Ramdisk_write in
  let record = serialize entry in
  let total = Bytes.length record in
  match fault with
  | Some (Lvm_fault.Fault.Torn_write { keep }) ->
    (* A torn write is necessarily the last: part of the record reaches
       the disk, then the machine dies. *)
    let keep = max 1 (min keep (total - 1)) in
    append_raw t record ~len:keep;
    raise (Lvm_fault.Fault.Crashed
             { cycle = Machine.time (machine t);
               site = Lvm_fault.Fault.Ramdisk_write })
  | Some Lvm_fault.Fault.Failed_write ->
    (* Lost write: the driver believes it succeeded; no byte is durable. *)
    ()
  | Some (Lvm_fault.Fault.Bit_flip { byte; bit }) ->
    let pos = t.log_len + (((byte mod total) + total) mod total) in
    append_raw t record ~len:total;
    t.charged_bytes <- t.charged_bytes + legacy;
    t.entries <- t.entries + 1;
    Bytes.set t.log pos
      (Char.chr (Char.code (Bytes.get t.log pos) lxor (1 lsl (bit land 7))))
  | Some _ | None ->
    append_raw t record ~len:total;
    t.charged_bytes <- t.charged_bytes + legacy;
    t.entries <- t.entries + 1

let wal_force t =
  ignore (Machine.fault_check (machine t) ~site:Lvm_fault.Fault.Ramdisk_force);
  (* The force is durable before its cycle cost is charged: a crash
     injected during the charge finds the forced bytes on disk. *)
  t.forced_len <- t.log_len;
  Lvm_obs.Counter.incr t.c_forces;
  Kernel.compute t.k Rvm_costs.commit_force

let should_truncate t =
  t.charged_bytes > Rvm_costs.truncate_threshold_bytes
  && (match t.truncate_gate with None -> true | Some g -> g ())

(* A Snapshot boundary is the commit marker of its snapshot id: Data
   records written under a snapshot id whose boundary never hit the disk
   are a torn snapshot and are never applied. *)
let committed_txns entries =
  List.filter_map
    (function
      | Commit { txn } -> Some txn
      | Snapshot { snap } -> Some snap
      | Data _ | Encoded _ -> None)
    entries

(* Apply committed Data records in append order. Records carry absolute
   new values, so replay is idempotent. *)
let image_write_sized image ~off ~size v =
  if off >= 0 && off + size <= Bytes.length image then
    match size with
    | 4 -> Bytes.set_int32_le image off (Int32.of_int v)
    | 2 -> Bytes.set_uint16_le image off (v land 0xFFFF)
    | 1 -> Bytes.set_uint8 image off (v land 0xFF)
    | _ -> ()

let apply_committed image entries =
  let committed = committed_txns entries in
  let applied = ref 0 in
  List.iter
    (function
      | Data { txn; off; bytes } when List.mem txn committed ->
        incr applied;
        Bytes.blit bytes 0 image off (Bytes.length bytes)
      | Encoded { txn; payload } when List.mem txn committed ->
        (* decode the codec stream; record addresses are image offsets *)
        let records, _ =
          Log_record.Codec.decode_fragment payload ~pos:0
            ~len:(Bytes.length payload)
        in
        List.iter
          (fun (r : Log_record.t) ->
            if not r.Log_record.pre_image then begin
              incr applied;
              image_write_sized image ~off:r.Log_record.addr
                ~size:r.Log_record.size r.Log_record.value
            end)
          records
      | Data _ | Encoded _ | Commit _ | Snapshot _ -> ())
    entries;
  !applied

let rebuild_log t entries =
  t.log_len <- 0;
  t.entries <- 0;
  t.charged_bytes <- 0;
  List.iter
    (fun e ->
      let record = serialize e in
      append_raw t record ~len:(Bytes.length record);
      t.charged_bytes <- t.charged_bytes + entry_bytes e;
      t.entries <- t.entries + 1)
    entries;
  (* a rebuilt log is durable in full (truncation and recovery both force
     their result) *)
  t.forced_len <- t.log_len

let truncate t =
  let s = scan t in
  let applied_words =
    List.fold_left (fun acc e -> acc + words (entry_bytes e)) 0 s.s_entries
  in
  Kernel.compute t.k (Rvm_costs.truncate_base
                      + (applied_words * Rvm_costs.truncate_per_word));
  let committed = committed_txns s.s_entries in
  let uncommitted =
    List.filter
      (function
        | Data { txn; _ } | Encoded { txn; _ } -> not (List.mem txn committed)
        | Commit _ | Snapshot _ -> false)
      s.s_entries
  in
  ignore (apply_committed t.image s.s_entries);
  let before = t.log_len in
  rebuild_log t uncommitted;
  match t.on_truncate with
  | Some f -> f ~removed:(before - t.log_len)
  | None -> ()

(* {1 Recovery} *)

type recovery = {
  scanned : int;
  committed : int;
  replayed : int;
  truncated_bytes : int;
  torn : string option;
}

let recovery_to_string r =
  Printf.sprintf "scanned=%d committed=%d replayed=%d truncated=%d torn=%s"
    r.scanned r.committed r.replayed r.truncated_bytes
    (match r.torn with None -> "none" | Some s -> s)

let recovered_image t =
  let image = Bytes.copy t.image in
  let saved = t.log_len in
  t.log_len <- durable_len t;
  ignore (apply_committed image (scan t).s_entries);
  t.log_len <- saved;
  image

let recover t =
  (* drop the unforced tail first: those bytes were never durable *)
  t.log_len <- durable_len t;
  let s = scan t in
  let truncated = t.log_len - s.s_valid_end in
  (match s.s_torn with
  | Some _ when truncated > 0 ->
    Lvm_obs.Ctx.event (Kernel.obs t.k)
      ~at:(Machine.time (machine t))
      (Lvm_obs.Event.Wal_torn { off = s.s_valid_end; len = truncated })
  | Some _ | None -> ());
  (* Repair the tail: drop the torn bytes so a second recovery — or new
     appends — start from an intact record boundary. *)
  rebuild_log t s.s_entries;
  let image = Bytes.copy t.image in
  let replayed = apply_committed image s.s_entries in
  let committed = List.length (committed_txns s.s_entries) in
  let report =
    { scanned = List.length s.s_entries; committed; replayed;
      truncated_bytes = truncated; torn = s.s_torn }
  in
  Lvm_obs.Ctx.event (Kernel.obs t.k)
    ~at:(Machine.time (machine t))
    (Lvm_obs.Event.Recovery { committed; replayed; truncated });
  (image, report)
