(** RLVM: recoverable memory implemented over logged virtual memory
    (Section 2.5).

    No [set_range] calls are needed: the recoverable segment is a logged
    region, so every store inside a transaction is recorded automatically
    by the logger hardware. The transaction identifier is written to a
    special logged location whenever it changes, which lets the library
    attribute log records to transactions.

    In-memory transaction semantics use the deferred-copy machinery: the
    last-committed state is the working segment's deferred-copy source, so
    abort is [reset_deferred_copy] and commit folds the transaction's log
    records into the committed image (CULT) while also forcing redo
    records to the same RAM-disk write-ahead log RVM uses — commit and
    truncation costs are unchanged by LVM, exactly as the paper reports. *)

type t

exception No_transaction
exception Transaction_open

(** Creation-time configuration, replacing the optional-argument form of
    the deprecated {!create}; override {!Config.default} with the
    functional-update syntax:

    {[
      let r = Rlvm.make { Rlvm.Config.default with group = 4 } k sp ~size
    ]} *)
module Config : sig
  type t = {
    log_pages : int;
        (** Initial LVM log provision, pages (default 32). *)
    max_log_pages : int option;
        (** Backpressure ceiling for log extension; [None] means
            [2 * log_pages]. *)
    group : int;
        (** Group-commit batch size: the RAM-disk WAL is forced once per
            [group] commits (default 1 — force every commit,
            bit-identical to the ungrouped implementation). *)
  }

  val default : t
  (** [{ log_pages = 32; max_log_pages = None; group = 1 }]. *)
end

val make : Config.t -> Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t ->
  size:int -> t
(** Map a recoverable segment of [size] usable bytes. One extra word is
    reserved past [size] for the transaction-identifier cell. The log
    segment is provisioned with [Config.log_pages] pages, managed by
    [Lvm_log], and may be extended under backpressure up to
    [Config.max_log_pages]. [size] is validated against the log
    provision: if a single worst-case transaction (one record per word,
    plus the transaction-cell writes) cannot fit, a typed
    [Lvm_vm.Error.Log_capacity] is raised at creation rather than
    records being silently absorbed at run time.

    [Config.group > 1] enables group commit: the RAM-disk WAL is forced
    once per [group] commits instead of on every commit, amortizing the
    force cost; a crash between forces loses the unforced commits (they
    roll back cleanly — recovery replays to the last fully-forced
    batch). Raises [Out_of_range] for [group < 1]. *)

val kernel : t -> Lvm_vm.Kernel.t
val base : t -> int
val size : t -> int
val disk : t -> Ramdisk.t
val log_segment : t -> Lvm_vm.Segment.t

val log : t -> Lvm_log.t
(** The lifecycle handle over {!log_segment} (extent states, stats). *)

val in_txn : t -> bool

val last_txn_id : t -> int
(** The most recently begun transaction's id (0 before any). Ids are
    assigned at {!begin_txn}, strictly monotone, and {e never} reset by
    {!recover} — a dead uncommitted WAL transaction can never collide
    with a future id, which is what lets a log-tailing consumer key
    per-transaction state by id across crashes. *)

val group : t -> int

val pending_commits : t -> int
(** Commits enqueued but not yet forced (always 0 with [group = 1]). *)

val flush_commits : t -> unit
(** Force the WAL now if any commits are pending (group commit only). *)

val begin_txn : t -> unit
(** One logged write of the transaction id to the special cell. *)

val read_word : t -> off:int -> int

val write_word : t -> off:int -> int -> unit
(** A plain logged store — no annotation, no old-value copy. *)

val commit : ?pace:(unit -> unit) -> t -> unit
(** Fold the transaction into the committed image, force its redo records
    to the RAM-disk WAL and truncate the LVM log.

    [pace] (default: no-op) is called at the commit's internal stage
    boundaries — before the WAL build and again after the force, before
    the CULT's timed accesses. A multi-CPU driver (see
    [Lvm_store.Workload]) yields to its scheduler there: the force is a
    single large compute charge, and without the yield the timed
    accesses that follow it would reach the shared bus far ahead of the
    other CPUs' clocks, which the bus model would misprice as
    contention. [pace] must leave the kernel on the same CPU it was
    called on (re-establish it before returning if it switches).
    @raise Lvm_vm.Error.Lvm_error [Log_exhausted] if the log segment fell
    into default-page absorption during the transaction — redo records
    were lost, so the transaction cannot be made durable. Abort instead. *)

val abort : t -> unit

val recover : t -> Ramdisk.recovery
(** Crash recovery: the in-memory working and committed segments are
    lost; scan the RAM disk's WAL (detecting and truncating any torn
    tail), replay committed transactions onto the image, and reload both
    segments from it. Idempotent: committed effects are durable,
    uncommitted effects invisible. Returns the scan/replay report. *)

val crash_and_recover : t -> unit
(** [recover], report discarded. *)
