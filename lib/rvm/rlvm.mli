(** RLVM: recoverable memory implemented over logged virtual memory
    (Section 2.5).

    No [set_range] calls are needed: the recoverable segment is a logged
    region, so every store inside a transaction is recorded automatically
    by the logger hardware. The transaction identifier is written to a
    special logged location whenever it changes, which lets the library
    attribute log records to transactions.

    In-memory transaction semantics use the deferred-copy machinery: the
    last-committed state is the working segment's deferred-copy source, so
    abort is [reset_deferred_copy] and commit folds the transaction's log
    records into the committed image (CULT) while also forcing redo
    records to the same RAM-disk write-ahead log RVM uses — commit and
    truncation costs are unchanged by LVM, exactly as the paper reports. *)

type t

exception No_transaction
exception Transaction_open

val create :
  ?log_pages:int -> ?max_log_pages:int -> ?group:int ->
  Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int -> t
(** Map a recoverable segment of [size] usable bytes. One extra word is
    reserved past [size] for the transaction-identifier cell. The log
    segment is provisioned with [log_pages] pages (default 32), managed
    by [Lvm_log], and may be extended under backpressure up to
    [max_log_pages] (default [2 * log_pages]). [size] is validated
    against the log provision: if a single worst-case transaction (one
    record per word, plus the transaction-cell writes) cannot fit, a
    typed [Lvm_vm.Error.Log_capacity] is raised at creation rather than
    records being silently absorbed at run time.

    [group] (default 1) enables group commit: the RAM-disk WAL is forced
    once per [group] commits instead of on every commit, amortizing the
    force cost; a crash between forces loses the unforced commits (they
    roll back cleanly — recovery replays to the last fully-forced
    batch). [group = 1] forces every commit and is bit-identical to the
    ungrouped implementation. Raises [Out_of_range] for [group < 1]. *)

val kernel : t -> Lvm_vm.Kernel.t
val base : t -> int
val size : t -> int
val disk : t -> Ramdisk.t
val log_segment : t -> Lvm_vm.Segment.t

val log : t -> Lvm_log.t
(** The lifecycle handle over {!log_segment} (extent states, stats). *)

val in_txn : t -> bool

val group : t -> int

val pending_commits : t -> int
(** Commits enqueued but not yet forced (always 0 with [group = 1]). *)

val flush_commits : t -> unit
(** Force the WAL now if any commits are pending (group commit only). *)

val begin_txn : t -> unit
(** One logged write of the transaction id to the special cell. *)

val read_word : t -> off:int -> int

val write_word : t -> off:int -> int -> unit
(** A plain logged store — no annotation, no old-value copy. *)

val commit : t -> unit
(** Fold the transaction into the committed image, force its redo records
    to the RAM-disk WAL and truncate the LVM log.
    @raise Lvm_vm.Error.Lvm_error [Log_exhausted] if the log segment fell
    into default-page absorption during the transaction — redo records
    were lost, so the transaction cannot be made durable. Abort instead. *)

val abort : t -> unit

val recover : t -> Ramdisk.recovery
(** Crash recovery: the in-memory working and committed segments are
    lost; scan the RAM disk's WAL (detecting and truncating any torn
    tail), replay committed transactions onto the image, and reload both
    segments from it. Idempotent: committed effects are durable,
    uncommitted effects invisible. Returns the scan/replay report. *)

val crash_and_recover : t -> unit
(** [recover], report discarded. *)
