open Lvm_vm

exception Unannotated_write of { off : int }
exception No_transaction
exception Transaction_open

type range = { r_off : int; r_len : int; old : Bytes.t }
type txn = { id : int; mutable ranges : range list (* newest first *) }

type t = {
  k : Kernel.t;
  space : Address_space.t;
  seg : Segment.t;
  base : int;
  size : int;
  disk : Ramdisk.t;
  strict : bool;
  mutable current : txn option;
  mutable next_txn : int;
}

module Config = struct
  type t = { strict : bool }

  let default = { strict = true }
end

let make (config : Config.t) k space ~size =
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let base = Kernel.bind k space region in
  { k; space; seg; base; size; disk = Ramdisk.create k ~size;
    strict = config.Config.strict; current = None; next_txn = 1 }

let kernel t = t.k
let base t = t.base
let size t = t.size
let disk t = t.disk
let in_txn t = t.current <> None

let begin_txn t =
  if t.current <> None then raise Transaction_open;
  let txn = { id = t.next_txn; ranges = [] } in
  t.next_txn <- t.next_txn + 1;
  t.current <- Some txn

let current t = match t.current with None -> raise No_transaction | Some x -> x

let words len = (len + 3) / 4

let seg_bytes t ~off ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Kernel.seg_read_raw t.k t.seg ~off:(off + i)
                               ~size:1))
  done;
  b

let set_range t ~off ~len =
  let txn = current t in
  if off < 0 || len < 0 || off + len > t.size then
    Error.raise_ (Error.Out_of_segment { segment = Segment.id t.seg; off });
  (* Bookkeeping, the old-value save and the redo-record skeleton. *)
  Kernel.compute t.k
    (Rvm_costs.set_range_overhead + Rvm_costs.redo_record_overhead
     + (words len * Rvm_costs.undo_copy_per_word));
  txn.ranges <- { r_off = off; r_len = len; old = seg_bytes t ~off ~len }
                :: txn.ranges

let covered txn ~off ~size =
  List.exists
    (fun r -> off >= r.r_off && off + size <= r.r_off + r.r_len)
    txn.ranges

let read_word t ~off = Kernel.read_word t.k t.space (t.base + off)

let write_word t ~off v =
  let txn = current t in
  if t.strict && not (covered txn ~off ~size:4) then
    raise (Unannotated_write { off });
  Kernel.compute t.k Rvm_costs.rvm_write_overhead;
  Kernel.write_word t.k t.space (t.base + off) v

let commit t =
  let txn = current t in
  (* Capture new values of every declared range into redo records and
     force them, oldest range first. *)
  List.iter
    (fun r ->
      Kernel.compute t.k
        (Rvm_costs.rvm_commit_per_range
         + (words r.r_len * Rvm_costs.redo_copy_per_word));
      Ramdisk.wal_append t.disk
        (Ramdisk.Data
           { txn = txn.id; off = r.r_off; bytes = seg_bytes t ~off:r.r_off
                                            ~len:r.r_len }))
    (List.rev txn.ranges);
  Ramdisk.wal_append t.disk (Ramdisk.Commit { txn = txn.id });
  Ramdisk.wal_force t.disk;
  t.current <- None;
  if Ramdisk.should_truncate t.disk then Ramdisk.truncate t.disk

let abort t =
  let txn = current t in
  (* Restore saved old values, newest range first so overlapping ranges
     unwind correctly. *)
  List.iter
    (fun r ->
      Kernel.compute t.k (words r.r_len * Rvm_costs.undo_copy_per_word);
      Bytes.iteri
        (fun i c ->
          Kernel.seg_write_raw t.k t.seg ~off:(r.r_off + i) ~size:1
            (Char.code c))
        r.old)
    txn.ranges;
  t.current <- None

let crash_and_recover t =
  t.current <- None;
  let image = Ramdisk.recovered_image t.disk in
  for off = 0 to t.size - 1 do
    Kernel.seg_write_raw t.k t.seg ~off ~size:1 (Char.code (Bytes.get image off))
  done
