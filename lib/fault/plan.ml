type trigger =
  | At_cycle of int
  | At_count of int
  | Every of int
  | With_probability of float

type injection = { site : Fault.site; trigger : trigger; fault : Fault.kind }

type record = { at_cycle : int; at_site : Fault.site; what : Fault.kind }

type armed = { inj : injection; mutable live : bool }

type t = {
  seed : int;
  armed : armed list;
  counts : int array; (* site occurrences, indexed by Fault.site_code *)
  rng : Splitmix.t;
  mutable history : record list; (* newest first *)
  mutable obs : Lvm_obs.Ctx.t option;
  mutable counter : Lvm_obs.Counter.counter option;
}

let n_sites = List.length Fault.all_sites

let validate { site; trigger; fault = _ } =
  (match trigger with
  | At_cycle n | At_count n | Every n ->
    if n <= 0 then invalid_arg "Plan.create: trigger threshold must be > 0"
  | With_probability p ->
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Plan.create: probability must be in [0,1]");
  ignore (Fault.site_code site)

let create ?(seed = 0) injections =
  List.iter validate injections;
  {
    seed;
    armed = List.map (fun inj -> { inj; live = true }) injections;
    counts = Array.make n_sites 0;
    rng = Splitmix.create ~seed;
    history = [];
    obs = None;
    counter = None;
  }

let seed t = t.seed

let crash_at ?seed cycle =
  create ?seed
    [ { site = Fault.Cpu; trigger = At_cycle cycle; fault = Fault.Crash } ]

let set_obs t ctx =
  t.obs <- Some ctx;
  t.counter <- Some (Lvm_obs.Ctx.counter ctx "fault.injected")

let fires t a ~cycle ~count =
  match a.inj.trigger with
  | At_cycle c ->
    if cycle >= c then begin
      a.live <- false;
      true
    end
    else false
  | At_count k ->
    if count = k then begin
      a.live <- false;
      true
    end
    else false
  | Every k -> count mod k = 0
  | With_probability p -> Splitmix.unit_float t.rng < p

let check t ~site ~cycle =
  let idx = Fault.site_code site in
  t.counts.(idx) <- t.counts.(idx) + 1;
  let count = t.counts.(idx) in
  let rec first = function
    | [] -> None
    | a :: rest ->
      if a.live && a.inj.site = site && fires t a ~cycle ~count then
        Some a.inj.fault
      else first rest
  in
  match first t.armed with
  | None -> None
  | Some fault ->
    t.history <- { at_cycle = cycle; at_site = site; what = fault }
                 :: t.history;
    (match t.counter with
    | Some c -> Lvm_obs.Counter.incr c
    | None -> ());
    (match t.obs with
    | Some ctx ->
      Lvm_obs.Ctx.event ctx ~at:cycle
        (Lvm_obs.Event.Fault_injected
           { site = Fault.site_code site; kind = Fault.kind_code fault })
    | None -> ());
    Some fault

let check_crash t ~site ~cycle =
  match check t ~site ~cycle with
  | Some Fault.Crash -> raise (Fault.Crashed { cycle; site })
  | other -> other

let occurrences t ~site = t.counts.(Fault.site_code site)
let injected t = List.rev t.history
let injected_count t = List.length t.history

let trace t =
  String.concat ""
    (List.map
       (fun { at_cycle; at_site; what } ->
         Printf.sprintf "cycle=%d site=%s kind=%s\n" at_cycle
           (Fault.site_name at_site) (Fault.kind_name what))
       (injected t))
