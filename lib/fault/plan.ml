type trigger =
  | At_cycle of int
  | At_count of int
  | Every of int
  | With_probability of float

type injection = { site : Fault.site; trigger : trigger; fault : Fault.kind }

type record = { at_cycle : int; at_site : Fault.site; what : Fault.kind }

type armed = { inj : injection; mutable live : bool }

type t = {
  seed : int;
  armed : armed list;
  counts : int array; (* site occurrences, indexed by Fault.site_code *)
  mutable rng : int64; (* splitmix64 state *)
  mutable history : record list; (* newest first *)
  mutable obs : Lvm_obs.Ctx.t option;
  mutable counter : Lvm_obs.Counter.counter option;
}

let n_sites = List.length Fault.all_sites

let validate { site; trigger; fault = _ } =
  (match trigger with
  | At_cycle n | At_count n | Every n ->
    if n <= 0 then invalid_arg "Plan.create: trigger threshold must be > 0"
  | With_probability p ->
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Plan.create: probability must be in [0,1]");
  ignore (Fault.site_code site)

let create ?(seed = 0) injections =
  List.iter validate injections;
  {
    seed;
    armed = List.map (fun inj -> { inj; live = true }) injections;
    counts = Array.make n_sites 0;
    rng = Int64.of_int (seed lxor 0x9E3779B9);
    history = [];
    obs = None;
    counter = None;
  }

let seed t = t.seed

let crash_at ?seed cycle =
  create ?seed
    [ { site = Fault.Cpu; trigger = At_cycle cycle; fault = Fault.Crash } ]

let set_obs t ctx =
  t.obs <- Some ctx;
  t.counter <- Some (Lvm_obs.Ctx.counter ctx "fault.injected")

(* splitmix64: a tiny, high-quality, explicitly-seeded generator — the
   plan must not touch the global [Random] state. *)
let next_u64 t =
  let z = Int64.add t.rng 0x9E3779B97F4A7C15L in
  t.rng <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_unit_float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_u64 t) 11) in
  float_of_int bits53 /. 9007199254740992. (* 2^53 *)

let fires t a ~cycle ~count =
  match a.inj.trigger with
  | At_cycle c ->
    if cycle >= c then begin
      a.live <- false;
      true
    end
    else false
  | At_count k ->
    if count = k then begin
      a.live <- false;
      true
    end
    else false
  | Every k -> count mod k = 0
  | With_probability p -> next_unit_float t < p

let check t ~site ~cycle =
  let idx = Fault.site_code site in
  t.counts.(idx) <- t.counts.(idx) + 1;
  let count = t.counts.(idx) in
  let rec first = function
    | [] -> None
    | a :: rest ->
      if a.live && a.inj.site = site && fires t a ~cycle ~count then
        Some a.inj.fault
      else first rest
  in
  match first t.armed with
  | None -> None
  | Some fault ->
    t.history <- { at_cycle = cycle; at_site = site; what = fault }
                 :: t.history;
    (match t.counter with
    | Some c -> Lvm_obs.Counter.incr c
    | None -> ());
    (match t.obs with
    | Some ctx ->
      Lvm_obs.Ctx.event ctx ~at:cycle
        (Lvm_obs.Event.Fault_injected
           { site = Fault.site_code site; kind = Fault.kind_code fault })
    | None -> ());
    Some fault

let check_crash t ~site ~cycle =
  match check t ~site ~cycle with
  | Some Fault.Crash -> raise (Fault.Crashed { cycle; site })
  | other -> other

let occurrences t ~site = t.counts.(Fault.site_code site)
let injected t = List.rev t.history
let injected_count t = List.length t.history

let trace t =
  String.concat ""
    (List.map
       (fun { at_cycle; at_site; what } ->
         Printf.sprintf "cycle=%d site=%s kind=%s\n" at_cycle
           (Fault.site_name at_site) (Fault.kind_name what))
       (injected t))
