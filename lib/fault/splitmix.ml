type t = { mutable state : int64 }

(* The state initialization and mixing constants must not change: fault
   plans and the property-test harness both promise byte-identical
   streams for a given seed across versions. *)
let create ~seed = { state = Int64.of_int (seed lxor 0x9E3779B9) }

let next_u64 t =
  let z = Int64.add t.state 0x9E3779B97F4A7C15L in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_u64 t) 11) in
  float_of_int bits53 /. 9007199254740992. (* 2^53 *)

let int t ~bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* 62 nonnegative bits are plenty; modulo bias is irrelevant for test
     generation at these bounds. *)
  Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) mod bound

let bool t = Int64.logand (next_u64 t) 1L = 1L
