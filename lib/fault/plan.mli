(** Seeded, deterministic fault plans.

    A plan is a schedule of {!injection}s evaluated at the fault sites
    threaded through the machine, kernel and RAM disk. Determinism
    guarantee: for a fixed plan (same injections, same seed) driven by a
    deterministic workload, the sequence of injected faults — and hence
    the whole simulated execution, trace included — is byte-identical
    across runs. The only randomness is the plan's own splitmix64 PRNG,
    seeded explicitly; the global [Random] state is never consulted.

    Each site occurrence ("the machine reached this hook point") is
    counted per site. Triggers are evaluated in the order injections
    were declared; the first that fires wins that occurrence, and
    one-shot triggers ([At_cycle], [At_count]) disarm afterwards. *)

type trigger =
  | At_cycle of int
      (** One-shot: fires at the first occurrence of the site whose
          machine cycle is [>= n]. *)
  | At_count of int
      (** One-shot: fires on the [n]-th occurrence of the site
          (1-based). *)
  | Every of int  (** Fires on every [n]-th occurrence of the site. *)
  | With_probability of float
      (** Fires with probability [p] per occurrence, drawn from the
          plan's seeded PRNG. *)

type injection = { site : Fault.site; trigger : trigger; fault : Fault.kind }

type record = { at_cycle : int; at_site : Fault.site; what : Fault.kind }

type t

val create : ?seed:int -> injection list -> t

val seed : t -> int

val crash_at : ?seed:int -> int -> t
(** [crash_at n]: the canonical crash-sweep plan — crash the machine at
    the first instruction-stream boundary at or after cycle [n]. *)

val set_obs : t -> Lvm_obs.Ctx.t -> unit
(** Attach an observability context: every subsequent injection emits a
    [Fault_injected] trace event and bumps the ["fault.injected"]
    counter. [Machine.set_fault_plan] does this automatically. *)

val check : t -> site:Fault.site -> cycle:int -> Fault.kind option
(** Record one occurrence of [site] at [cycle] and return the fault to
    inject there, if any. Injection sites call this; user code normally
    has no reason to. *)

val check_crash : t -> site:Fault.site -> cycle:int -> Fault.kind option
(** Like {!check}, but a [Crash] fault raises {!Fault.Crashed} directly
    — the behaviour every site except the torn-write path wants. *)

val occurrences : t -> site:Fault.site -> int
(** Site occurrences observed so far. *)

val injected : t -> record list
(** Faults injected so far, oldest first. *)

val injected_count : t -> int

val trace : t -> string
(** Deterministic one-line-per-injection rendering
    ("cycle=C site=S kind=K"), for byte-equality checks between runs. *)
