type site =
  | Cpu
  | Ramdisk_write
  | Ramdisk_force
  | Log_dma
  | Logger_admit
  | Log_segment
  | Net_frame
  | Net_ack
  | Split_cutover

type kind =
  | Crash
  | Torn_write of { keep : int }
  | Failed_write
  | Bit_flip of { byte : int; bit : int }
  | Dma_fail
  | Fifo_overrun
  | Log_exhaust
  | Net_drop
  | Net_delay of { ticks : int }
  | Net_dup
  | Net_reorder

exception Crashed of { cycle : int; site : site }

let all_sites =
  [ Cpu; Ramdisk_write; Ramdisk_force; Log_dma; Logger_admit; Log_segment;
    Net_frame; Net_ack; Split_cutover ]

let site_code = function
  | Cpu -> 0
  | Ramdisk_write -> 1
  | Ramdisk_force -> 2
  | Log_dma -> 3
  | Logger_admit -> 4
  | Log_segment -> 5
  | Net_frame -> 6
  | Net_ack -> 7
  | Split_cutover -> 8

let kind_code = function
  | Crash -> 0
  | Torn_write _ -> 1
  | Failed_write -> 2
  | Bit_flip _ -> 3
  | Dma_fail -> 4
  | Fifo_overrun -> 5
  | Log_exhaust -> 6
  | Net_drop -> 7
  | Net_delay _ -> 8
  | Net_dup -> 9
  | Net_reorder -> 10

let site_name = function
  | Cpu -> "cpu"
  | Ramdisk_write -> "ramdisk_write"
  | Ramdisk_force -> "ramdisk_force"
  | Log_dma -> "log_dma"
  | Logger_admit -> "logger_admit"
  | Log_segment -> "log_segment"
  | Net_frame -> "net_frame"
  | Net_ack -> "net_ack"
  | Split_cutover -> "split_cutover"

let kind_name = function
  | Crash -> "crash"
  | Torn_write { keep } -> Printf.sprintf "torn_write(keep=%d)" keep
  | Failed_write -> "failed_write"
  | Bit_flip { byte; bit } -> Printf.sprintf "bit_flip(%d.%d)" byte bit
  | Dma_fail -> "dma_fail"
  | Fifo_overrun -> "fifo_overrun"
  | Log_exhaust -> "log_exhaust"
  | Net_drop -> "net_drop"
  | Net_delay { ticks } -> Printf.sprintf "net_delay(%d)" ticks
  | Net_dup -> "net_dup"
  | Net_reorder -> "net_reorder"

let pp_site ppf s = Format.pp_print_string ppf (site_name s)
let pp_kind ppf k = Format.pp_print_string ppf (kind_name k)

let () =
  Printexc.register_printer (function
    | Crashed { cycle; site } ->
      Some
        (Printf.sprintf "Lvm_fault.Crashed at cycle %d (site %s)" cycle
           (site_name site))
    | _ -> None)
