(** Fault vocabulary for deterministic fault injection.

    A {!site} names a hook point threaded through the simulated stack —
    the instruction stream, the RAM disk's write path, the logger's DMA
    engine and FIFO, and log-segment page provisioning. A {!kind} names
    what goes wrong there. A {!Plan} (see {!Plan}) schedules kinds at
    sites; the component owning each site interprets the kind:

    - [Crash] at any site aborts the workload by raising {!Crashed} —
      volatile state is considered lost, the RAM disk survives.
    - [Torn_write] applies only to [Ramdisk_write]: the first [keep]
      bytes of the serialized WAL record reach the disk, then the
      machine dies (a torn write can only ever be the last one).
    - [Failed_write] applies to [Ramdisk_write]: the record is silently
      dropped — the classic lost-write disk fault.
    - [Bit_flip] applies to [Ramdisk_write]: one bit of the serialized
      record is inverted after it is written; recovery's checksums must
      catch it.
    - [Dma_fail] applies to [Log_dma]: the logger's record DMA fails
      and the record is lost (counted in [Perf.log_records_lost]).
    - [Fifo_overrun] applies to [Logger_admit]: the admission check
      behaves as if the FIFO threshold were crossed, forcing the
      overload interrupt.
    - [Log_exhaust] applies to [Log_segment]: the kernel's
      log-address-invalid handler behaves as if the log segment had no
      pages left, forcing default-page absorption.
    - [Net_drop], [Net_delay], [Net_dup] and [Net_reorder] apply to the
      transport sites [Net_frame] (primary-to-replica replication
      frames) and [Net_ack] (replica-to-primary acks and hellos): the
      frame being sent is lost, delayed by [ticks], delivered twice, or
      delivered ahead of frames already in flight on the same link (see
      [Lvm_repl.Transport]). *)

type site =
  | Cpu  (** Instruction-stream boundary: every read/write/compute. *)
  | Ramdisk_write  (** A serialized WAL record reaching the RAM disk. *)
  | Ramdisk_force  (** The commit-time log force. *)
  | Log_dma  (** The logger forming and DMA-ing one log record. *)
  | Logger_admit  (** FIFO admission of a snooped write. *)
  | Log_segment  (** Log-segment page provisioning in the kernel. *)
  | Net_frame  (** A replication frame leaving the primary. *)
  | Net_ack  (** An ack/hello frame leaving a replica. *)
  | Split_cutover
      (** The sharded store's shard-split cutover point: consulted just
          before the coordinator transaction that atomically flips the
          routing table is forced (see [Lvm_store.Store]). A [Crash]
          here dies with the copy complete but the route flip not yet
          durable — the canonical split-protocol crash window. *)

type kind =
  | Crash
  | Torn_write of { keep : int }
  | Failed_write
  | Bit_flip of { byte : int; bit : int }
  | Dma_fail
  | Fifo_overrun
  | Log_exhaust
  | Net_drop
  | Net_delay of { ticks : int }
  | Net_dup
  | Net_reorder

exception Crashed of { cycle : int; site : site }
(** The injected machine crash. Volatile state (segments, caches, the
    log segment) is lost; only the RAM disk is durable. Catch it, then
    run recovery. *)

val all_sites : site list

val site_code : site -> int
(** Stable small-integer code, used in {!Lvm_obs.Event.Fault_injected}. *)

val kind_code : kind -> int
(** Stable small-integer code for the kind constructor (payload
    excluded), used in {!Lvm_obs.Event.Fault_injected}. *)

val site_name : site -> string
val kind_name : kind -> string
val pp_site : Format.formatter -> site -> unit
val pp_kind : Format.formatter -> kind -> unit
