(** splitmix64: a tiny, high-quality, explicitly-seeded generator.

    Everything in this repository that needs randomness — fault plans,
    the property-test harness — draws from an instance of this stream
    and never touches the global [Random] state, so every "random"
    execution is reproducible from its integer seed. The stream for a
    given seed is stable: state initialization and mixing constants are
    part of the compatibility contract. *)

type t

val create : seed:int -> t

val next_u64 : t -> int64
(** The next 64 raw bits. *)

val unit_float : t -> float
(** Uniform in [0, 1), 53 bits of precision. *)

val int : t -> bound:int -> int
(** Uniform-ish in [0, bound); raises on [bound <= 0]. *)

val bool : t -> bool
