open Lvm_machine
open Lvm_vm

type extent_state = Active | Sealed | Truncatable | Recycled

type stats = {
  extents : int;
  extent_pages : int;
  active : int;
  sealed : int;
  truncatable : int;
  recycled : int;
  capacity : int;
  write_pos : int;
  utilization_pct : int;
  truncation_lag : int;
  switches : int;
  reuses : int;
  recycled_total : int;
}

type t = {
  k : Kernel.t;
  seg : Segment.t;
  extent_pages : int;
  mutable truncatable_upto : int; (* bytes below this are dead *)
  mutable high_water : int; (* highest extent index ever entered *)
  mutable switches : int;
  mutable reuses : int;
  mutable recycled_total : int;
  c_extends : Lvm_obs.Counter.counter;
  c_switches : Lvm_obs.Counter.counter;
  c_reuses : Lvm_obs.Counter.counter;
  c_recycled : Lvm_obs.Counter.counter;
  g_extents : Lvm_obs.Counter.counter;
  g_util : Lvm_obs.Counter.counter;
  g_lag : Lvm_obs.Counter.counter;
}

let segment t = t.seg
let kernel t = t.k
let extent_bytes t = t.extent_pages * Addr.page_size

let extent_count t =
  (Segment.size t.seg + extent_bytes t - 1) / extent_bytes t

let event t ev = Lvm_obs.Ctx.event (Kernel.obs t.k) ~at:(Kernel.time t.k) ev

(* Gauges are plain counters driven with [set]; all cycle-free. *)
let refresh_gauges t =
  let capacity = Segment.size t.seg in
  let pos = Segment.write_pos t.seg in
  Lvm_obs.Counter.set t.g_extents (extent_count t);
  Lvm_obs.Counter.set t.g_util
    (if capacity = 0 then 0 else pos * 100 / capacity);
  let sealed_bytes = pos / extent_bytes t * extent_bytes t in
  Lvm_obs.Counter.set t.g_lag (max 0 (sealed_bytes - t.truncatable_upto))

(* {1 The per-kernel registry and the crossing observer} *)

(* An extent switch is a page crossing that lands on the first page of
   the next extent; it rides the kernel's [Log_addr_invalid] fault path,
   which re-points the logger's log-table entry and then notifies us. *)
let note_crossing t ~next_page ~absorbed =
  if (not absorbed) && next_page mod t.extent_pages = 0 then begin
    let ext = next_page / t.extent_pages in
    t.switches <- t.switches + 1;
    Lvm_obs.Counter.incr t.c_switches;
    if ext <= t.high_water then begin
      (* ring wrapped into capacity it had already claimed once: the
         steady state where logging stops allocating *)
      t.reuses <- t.reuses + 1;
      Lvm_obs.Counter.incr t.c_reuses
    end
    else t.high_water <- ext;
    refresh_gauges t
  end

type registry = { logs : (int, t) Hashtbl.t }
type Kernel.ext += Registry of registry

let registry k =
  match Kernel.log_ext k with
  | Some (Registry r) -> r
  | Some _ | None ->
    let r = { logs = Hashtbl.create 8 } in
    Kernel.set_log_ext k (Some (Registry r));
    Kernel.set_log_crossing_observer k
      (Some
         (fun seg ~next_page ~absorbed ->
           match Hashtbl.find_opt r.logs (Segment.id seg) with
           | None -> ()
           | Some t -> note_crossing t ~next_page ~absorbed));
    r

let attach ?(extent_pages = 4) k seg =
  if extent_pages < 1 then
    Error.raise_
      (Error.Out_of_range
         { op = "Lvm_log.of_segment"; what = "extent_pages";
           value = extent_pages });
  let r = registry k in
  match Hashtbl.find_opt r.logs (Segment.id seg) with
  | Some t -> t
  | None ->
    let ctx = Kernel.obs k in
    let gauge fmt_name =
      Lvm_obs.Ctx.counter ctx
        (Printf.sprintf "log.%d.%s" (Segment.id seg) fmt_name)
    in
    let t =
      {
        k;
        seg;
        extent_pages;
        truncatable_upto = 0;
        high_water = Segment.write_pos seg / (extent_pages * Addr.page_size);
        switches = 0;
        reuses = 0;
        recycled_total = 0;
        c_extends = Lvm_obs.Ctx.counter ctx "kernel.log_extends";
        c_switches = Lvm_obs.Ctx.counter ctx "log.extent_switches";
        c_reuses = Lvm_obs.Ctx.counter ctx "log.extent_reuses";
        c_recycled = Lvm_obs.Ctx.counter ctx "log.extents_recycled";
        g_extents = gauge "extents";
        g_util = gauge "utilization_pct";
        g_lag = gauge "truncation_lag";
      }
    in
    Hashtbl.replace r.logs (Segment.id seg) t;
    refresh_gauges t;
    t

let of_segment ?extent_pages k seg =
  if Segment.kind seg <> Segment.Log then
    Error.raise_
      (Error.Not_a_log_segment
         { op = "Lvm_log.of_segment"; segment = Segment.id seg });
  attach ?extent_pages k seg

let create ?mode ?extent_pages k ~size =
  attach ?extent_pages k (Kernel.create_log_segment ?mode k ~size)

(* {1 State derivation} *)

let extent_state t i =
  if i < 0 || i >= extent_count t then
    invalid_arg "Lvm_log.extent_state: bad extent index";
  let active_ext = Segment.write_pos t.seg / extent_bytes t in
  if i = active_ext then Active
  else if i > active_ext then Recycled
  else if (i + 1) * extent_bytes t <= t.truncatable_upto then Truncatable
  else Sealed

let sync t = Kernel.sync_log t.k t.seg

(* Position-only sync: no coalescing-buffer drain. Reservations run on
   every logged write, so they must not force the buffer out. *)
let sync_pos t = Kernel.sync_log_pos t.k t.seg

let stream_version t =
  match Segment.log_mode t.seg with
  | Logger.Normal -> Logger.codec (Machine.logger (Kernel.machine t.k))
  | Logger.Direct_mapped | Logger.Indexed -> Log_record.V0

let length t =
  sync t;
  Segment.write_pos t.seg

let room t =
  sync t;
  Segment.size t.seg - Segment.write_pos t.seg

let stats t =
  sync t;
  let n = extent_count t in
  let count st =
    let c = ref 0 in
    for i = 0 to n - 1 do
      if extent_state t i = st then incr c
    done;
    !c
  in
  let capacity = Segment.size t.seg in
  let pos = Segment.write_pos t.seg in
  let sealed_bytes = pos / extent_bytes t * extent_bytes t in
  {
    extents = n;
    extent_pages = t.extent_pages;
    active = count Active;
    sealed = count Sealed;
    truncatable = count Truncatable;
    recycled = count Recycled;
    capacity;
    write_pos = pos;
    utilization_pct = (if capacity = 0 then 0 else pos * 100 / capacity);
    truncation_lag = max 0 (sealed_bytes - t.truncatable_upto);
    switches = t.switches;
    reuses = t.reuses;
    recycled_total = t.recycled_total;
  }

(* {1 Extension and reservation} *)

let extend t ~pages =
  let seg = t.seg in
  let first_new = Segment.pages seg in
  Segment.grow seg ~pages;
  Lvm_obs.Counter.incr t.c_extends;
  event t
    (Lvm_obs.Event.Log_extend
       { segment = Segment.id seg; pages; total_pages = Segment.pages seg });
  for p = first_new to Segment.pages seg - 1 do
    ignore (Kernel.materialize_page t.k seg ~page:p)
  done;
  Kernel.leave_absorption t.k seg;
  refresh_gauges t

let reserve t ~bytes ~max_pages =
  if bytes < 0 then
    Error.raise_
      (Error.Out_of_range
         { op = "reserve_log_room"; what = "bytes"; value = bytes });
  sync_pos t;
  let seg = t.seg in
  let pending =
    Logger.pending_log_bytes_bound (Machine.logger (Kernel.machine t.k))
  in
  let pos = Segment.write_pos seg in
  let capacity = Segment.size seg in
  if pos + bytes + pending > capacity || Segment.absorbing seg then begin
    let short = max 0 (pos + bytes + pending - capacity) in
    let need =
      max
        (if Segment.absorbing seg then 1 else 0)
        ((short + Addr.page_size - 1) / Addr.page_size)
    in
    if Segment.pages seg + need <= max_pages then extend t ~pages:need
    else
      Error.raise_
        (Error.Log_exhausted { segment = Segment.id seg; pos; capacity })
  end

(* {1 Truncation and compaction} *)

let mark_truncatable t ~upto =
  sync t;
  if upto < 0 || upto > Segment.write_pos t.seg then
    Error.raise_
      (Error.Out_of_range
         { op = "truncate_log"; what = "keep_from"; value = upto });
  if upto > t.truncatable_upto then t.truncatable_upto <- upto;
  refresh_gauges t

(* Copy stream bytes out of the segment's frames (untimed; cost is
   charged by the caller). *)
let snapshot_bytes t ~len =
  let mem = Machine.mem (Kernel.machine t.k) in
  let buf = Bytes.create len in
  let off = ref 0 in
  while !off < len do
    let chunk = min (Addr.page_size - Addr.page_offset !off) (len - !off) in
    let paddr = Kernel.paddr_of t.k t.seg ~off:!off in
    Physmem.blit_to_bytes mem ~src:paddr buf ~pos:!off ~len:chunk;
    off := !off + chunk
  done;
  buf

let write_stream_bytes t buf =
  let mem = Machine.mem (Kernel.machine t.k) in
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let chunk = min (Addr.page_size - Addr.page_offset !off) (len - !off) in
    let paddr = Kernel.paddr_of t.k t.seg ~off:!off in
    Physmem.blit_of_bytes mem buf ~pos:!off ~dst:paddr ~len:chunk;
    off := !off + chunk
  done

let compact t =
  sync t;
  let seg = t.seg in
  let pos = Segment.write_pos seg in
  let keep_from = min t.truncatable_upto pos in
  let remaining =
    match stream_version t with
    | Log_record.V0 ->
      let remaining = pos - keep_from in
      if remaining > 0 then begin
        (* Compact the kept suffix to the front, page by page (kernel
           copy, charged at bcopy cost — identical to the seed's
           truncate_log). *)
        let moved = ref 0 in
        while !moved < remaining do
          let src_off = keep_from + !moved in
          let dst_off = !moved in
          let chunk =
            min
              (min
                 (Addr.page_size - Addr.page_offset src_off)
                 (Addr.page_size - Addr.page_offset dst_off))
              (remaining - !moved)
          in
          let src = Kernel.paddr_of t.k seg ~off:src_off in
          let dst = Kernel.paddr_of t.k seg ~off:dst_off in
          Machine.bcopy (Kernel.machine t.k) ~src ~dst ~len:chunk;
          moved := !moved + chunk
        done
      end;
      remaining
    | Log_record.V1 ->
      (* An encoded suffix cannot be bcopied to the front: a delta's
         predecessor may be dying with the prefix, and pads were placed
         for the old page phase. Decode the kept containers (scanning
         from the stream head so every delta resolves) and re-encode
         them as a fresh stream, charged at the same bcopy rate over the
         bytes written. *)
      let buf = snapshot_bytes t ~len:pos in
      let kept = ref [] in
      ignore
        (Log_record.Codec.scan buf ~pos:0 ~len:pos ~f:(fun ~off ~next:_ rs ->
             if off >= keep_from then
               List.iter (fun r -> kept := r :: !kept) rs));
      let out = Log_record.Codec.encode_stream (List.rev !kept) in
      write_stream_bytes t out;
      let words = (Bytes.length out + Addr.word_size - 1) / Addr.word_size in
      Machine.compute (Kernel.machine t.k)
        (Cycles.bcopy_base + (words * Cycles.bcopy_per_word));
      Bytes.length out
  in
  Segment.set_write_pos seg remaining;
  let freed = keep_from / extent_bytes t in
  if freed > 0 then begin
    t.recycled_total <- t.recycled_total + freed;
    Lvm_obs.Counter.add t.c_recycled freed;
    event t
      (Lvm_obs.Event.Log_recycle { segment = Segment.id seg; extents = freed })
  end;
  t.truncatable_upto <- 0;
  Kernel.rearm_log t.k seg;
  refresh_gauges t

let truncate t ~keep_from =
  mark_truncatable t ~upto:keep_from;
  compact t

let seal t =
  sync t;
  let sealed = Segment.write_pos t.seg in
  (* A V1 stream's floor is its 8-byte version header, not zero. *)
  let empty =
    match stream_version t with
    | Log_record.V0 -> 0
    | Log_record.V1 -> Log_record.Codec.header_bytes
  in
  let sealed = if sealed <= empty then 0 else sealed in
  (* Sealing an empty active extent — including a second seal in the
     same epoch, which finds the ring already compacted to zero — is a
     no-op: no bytes move, no extents recycle, stats stay put. Without
     the early-out the ring would still run a zero-byte compaction and
     re-arm the logger, so a double seal perturbed gauges and charged
     a pointless rearm. *)
  if sealed = 0 then 0
  else begin
    truncate t ~keep_from:sealed;
    sealed
  end

let truncate_suffix t ~new_end =
  sync t;
  if new_end < 0 || new_end > Segment.write_pos t.seg then
    Error.raise_
      (Error.Out_of_range
         { op = "truncate_log_suffix"; what = "new_end"; value = new_end });
  Segment.set_write_pos t.seg new_end;
  if t.truncatable_upto > new_end then t.truncatable_upto <- new_end;
  Kernel.rearm_log t.k t.seg;
  refresh_gauges t

(* {1 Software epoch coalescing}

   The commit-path analogue of the logger's hardware buffer: squash one
   epoch's worth of write records before they are serialized into a WAL
   payload. Only whole-word writes merge (last value wins, first-touch
   order); a sub-word write flushes the pending words first so
   overlapping extents can never be re-ordered against each other. *)

module Coalescer = struct
  type write = { off : int; size : int; value : int; timestamp : int }

  let squash writes =
    let tbl = Hashtbl.create 64 in
    let order = Queue.create () in
    let out = ref [] in
    let absorbed = ref 0 in
    let flush () =
      Queue.iter
        (fun off ->
          match Hashtbl.find_opt tbl off with
          | Some w -> out := w :: !out
          | None -> ())
        order;
      Queue.clear order;
      Hashtbl.reset tbl
    in
    List.iter
      (fun w ->
        if w.size = Addr.word_size && w.off land (Addr.word_size - 1) = 0
        then begin
          if Hashtbl.mem tbl w.off then incr absorbed
          else Queue.push w.off order;
          Hashtbl.replace tbl w.off w
        end
        else begin
          flush ();
          out := w :: !out
        end)
      writes;
    flush ();
    (List.rev !out, !absorbed)
end

(* {1 Group commit} *)

module Batcher = struct
  type batcher = {
    group : int;
    force : unit -> unit;
    hist : Lvm_obs.Histogram.t option;
    mutable pending : int;
  }

  let create ?obs ~group ~force () =
    if group < 1 then
      Error.raise_
        (Error.Out_of_range
           { op = "Lvm_log.Batcher.create"; what = "group"; value = group });
    let hist =
      Option.map
        (fun ctx ->
          Lvm_obs.Ctx.histogram ctx ~name:"rlvm.commit_batch"
            ~bounds:[| 1; 2; 4; 8; 16; 32 |])
        obs
    in
    { group; force; hist; pending = 0 }

  let group b = b.group
  let pending b = b.pending

  let flush b =
    if b.pending > 0 then begin
      (match b.hist with
      | None -> ()
      | Some h -> Lvm_obs.Histogram.observe h b.pending);
      (* zero [pending] first so a crash injected inside the force leaves
         no phantom batch behind *)
      b.pending <- 0;
      b.force ()
    end

  let note_commit b =
    b.pending <- b.pending + 1;
    if b.pending >= b.group then flush b

  let reset b = b.pending <- 0
end
