(** The unified log-lifecycle subsystem.

    The paper's log segments have a real lifecycle — provisioned by the
    kernel, extended on logging faults at page boundaries (Section 3.2),
    truncated at commit and checkpoint (Sections 2.4–2.5). This module
    owns that state machine for every log segment of a kernel, so no
    caller outside lib/log manipulates log-table addresses directly.

    {2 Extent rings}

    A managed log is a chain of fixed-size page {e extents} laid out
    consecutively in its segment. Each extent is in one of four states,
    derived from the write position and the truncation watermark:

    - [Active] — the logger's log-table entry points into it;
    - [Sealed] — fully written, awaiting truncation;
    - [Truncatable] — marked reclaimable by a commit or checkpoint;
    - [Recycled] — reclaimed; reused before any new extent is allocated.

    Extent switches ride the existing [Log_addr_invalid] logging-fault
    path: when the logger crosses into the first page of the next extent
    the kernel re-points the log-table entry and this module accounts the
    switch (and whether the extent was a recycled one — steady-state
    logging stops allocating once the ring is primed). Compaction
    ({!compact}) recycles truncatable extents with the kernel's bcopy
    path, exactly as the seed's offset-based [truncate_log] did, so
    costs are unchanged.

    {2 Group commit}

    {!Batcher} amortizes a force callback (the Ramdisk WAL force) over
    [group] commits. With [group = 1] (the default everywhere) every
    commit forces immediately and all Table 3 numbers are bit-identical
    to the ungrouped implementation.

    All bookkeeping here is cycle-free; only {!compact}'s bcopy and the
    page materialization of extension charge machine time, through the
    same kernel primitives the seed used. *)

type t
(** A managed log: a log segment plus its lifecycle state. *)

type extent_state = Active | Sealed | Truncatable | Recycled

type stats = {
  extents : int;  (** provisioned extents (capacity / extent bytes) *)
  extent_pages : int;
  active : int;
  sealed : int;
  truncatable : int;
  recycled : int;
  capacity : int;  (** segment capacity, bytes *)
  write_pos : int;  (** synchronized write position, bytes *)
  utilization_pct : int;  (** write_pos * 100 / capacity *)
  truncation_lag : int;
      (** bytes sealed but not yet marked truncatable — how far
          checkpointing trails the logger *)
  switches : int;  (** extent switches observed on the fault path *)
  reuses : int;  (** switches that landed on a recycled extent *)
  recycled_total : int;  (** extents reclaimed by compaction, ever *)
}

(** {1 Construction} *)

val create :
  ?mode:Lvm_machine.Logger.mode -> ?extent_pages:int -> Lvm_vm.Kernel.t ->
  size:int -> t
(** Provision a fresh log segment of [size] bytes under lifecycle
    management. [extent_pages] (default 4) is the ring's extent size. *)

val of_segment :
  ?extent_pages:int -> Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> t
(** Attach an existing log segment; idempotent per kernel (a second
    attach returns the same handle and ignores [extent_pages]). Raises
    [Error.Not_a_log_segment] for non-log segments. *)

val segment : t -> Lvm_vm.Segment.t
val kernel : t -> Lvm_vm.Kernel.t

(** {1 The lifecycle state machine} *)

val extent_state : t -> int -> extent_state
(** State of extent [i] (0-based); raises [Invalid_argument] out of
    range. *)

val stats : t -> stats

val sync : t -> unit
(** Synchronize the segment's write position from the logger. A hard
    sync: drains the logger's write-coalescing buffer first when one is
    configured (see {!Lvm_vm.Kernel.sync_log}). *)

val stream_version : t -> Lvm_machine.Log_record.version
(** Wire format of the log's record stream (the logger's codec for
    [Normal]-mode logs, [V0] otherwise). *)

val length : t -> int
(** Synchronized write position: bytes of records in the log. *)

val room : t -> int
(** Bytes of capacity left past the synchronized write position. *)

val extend : t -> pages:int -> unit
(** Grow the log and materialize the new pages (Section 3.2's
    provide-pages-in-advance path); leaves absorption mode if the logger
    was writing to the default page. *)

val reserve : t -> bytes:int -> max_pages:int -> unit
(** Backpressure: ensure [bytes] more record traffic fits, extending
    just enough, or raise typed [Error.Log_exhausted] {e before} the
    caller issues the writes if that would exceed [max_pages]. *)

val mark_truncatable : t -> upto:int -> unit
(** A commit or checkpoint declares records before byte [upto] dead;
    whole extents below the watermark become [Truncatable]. Raises
    [Error.Out_of_range] unless [0 <= upto <= length]. Does not move
    data — pair with {!compact}. *)

val compact : t -> unit
(** Recycle everything below the truncation watermark: compact the kept
    suffix to the front of the segment (kernel bcopy, charged), recycle
    the freed extents, re-arm the logger at the new write position. *)

val truncate : t -> keep_from:int -> unit
(** [mark_truncatable ~upto:keep_from] followed by {!compact}: the
    seed's [truncate_log], now expressed in lifecycle terms. *)

val truncate_suffix : t -> new_end:int -> unit
(** Discard records at and after byte [new_end] (rollback: replayed
    history beyond the target time is dead). *)

val seal : t -> int
(** Seal the log's entire current span: sync, then truncate everything
    written so far ([truncate ~keep_from:length]), recycling every full
    extent and re-arming the logger at the front. Returns the number of
    record bytes sealed. A failure-atomic snapshot calls this once its
    boundary record is durable — the hardware log's job for those records
    is done, and the extent ring starts the next snapshot epoch empty.

    Sealing an empty active extent — and hence sealing twice in one
    epoch — is a guaranteed no-op returning [0]: nothing is compacted or
    recycled, {!stats} are unchanged, and the ring stays consistent. *)

(** {1 Software epoch coalescing} *)

module Coalescer : sig
  type write = { off : int; size : int; value : int; timestamp : int }

  val squash : write list -> write list * int
  (** Squash one epoch of write records before WAL serialization: repeated
      whole-word writes to the same offset merge in place (last value
      wins, first-touch order); a sub-word write flushes the pending words
      first so overlapping extents keep their relative order. Returns the
      squashed sequence and the number of absorbed writes. *)
end

(** {1 Group commit} *)

module Batcher : sig
  type batcher

  val create :
    ?obs:Lvm_obs.Ctx.t -> group:int -> force:(unit -> unit) -> unit ->
    batcher
  (** Force [force] once per [group] commits. Raises
      [Error.Out_of_range] if [group < 1]. With [obs], batch sizes feed
      the ["rlvm.commit_batch"] histogram. *)

  val group : batcher -> int

  val pending : batcher -> int
  (** Commits enqueued since the last force. *)

  val note_commit : batcher -> unit
  (** Record one commit; forces when the batch fills. With [group = 1]
      this is exactly one force per commit. *)

  val flush : batcher -> unit
  (** Force now if anything is pending. *)

  val reset : batcher -> unit
  (** Drop pending commits without forcing (crash recovery). *)
end
