(** Log-derived MVCC snapshot reads (see [docs/MVCC.md]).

    The paper's central bet is that the hardware log captures every
    committed mutation cheaply — so the log, not the shard workers, can
    serve reads. A {!View} tails each shard's RAM-disk WAL into a
    versioned word store keyed by commit timestamp and serves snapshot
    reads at a GVT-style consistent cut: the minimum of the per-shard
    applied frontiers, with 2PC atomicity falling out of the one shared
    timestamp a cross-shard transaction carries on every participant.

    The view is a pure consumer: it owns no clock and allocates no
    timestamps. The store drives it with {!event} stamps ([Commit] after
    every durable commit, [Route] at split/merge cutover, [Reset] after
    crash recovery) and the WAL supplies the write payloads. Reads are
    lock-free and wait-free once a snapshot is acquired — they touch
    only the pinned route array and the version chains, never a shard
    worker CPU. *)

type event =
  | Commit of { shard : int; txn : int; ts : int }
      (** Shard [shard]'s rlvm transaction [txn] committed with global
          timestamp [ts]. A cross-shard transaction emits one stamp per
          participant, all carrying the {e same} [ts] — which is exactly
          what makes it wholly visible or wholly invisible at any cut. *)
  | Route of { ts : int; route : int array }
      (** Split/merge cutover: [route] (bucket -> shard) took effect at
          [ts]. Snapshots below [ts] keep resolving through the previous
          routing (pre-cutover pinning). *)
  | Reset of { ts : int; route : int array }
      (** Crash recovery completed at watermark [ts]: the view rebuilds
          its bases from the recovered images and invalidates every
          outstanding snapshot (reads on them return
          [Snapshot_unavailable]). Fresh snapshots are immediately
          re-derivable. *)

module View : sig
  type t

  type source = {
    shards : int;
    keys : int;
    off_of_key : int -> int;  (** key -> image byte offset (word-aligned) *)
    bucket : int -> int;  (** key -> route bucket *)
    disk : int -> Lvm_rvm.Ramdisk.t;  (** shard -> its WAL disk *)
    watermark : unit -> int;
        (** The store's commit watermark: the highest timestamp [w] such
            that every transaction at or below [w] has been decided —
            [next_ts - 1] with no cross-shard transaction in flight,
            else one below the oldest in-flight timestamp. *)
    route : int array;
    obs : Lvm_obs.Ctx.t;
    history : int;
        (** How many timestamps of version history to retain behind the
            cut for [as_of] time travel (live snapshots always pin their
            own history regardless). *)
  }

  val attach : source -> base_ts:int -> t
  (** Build a view whose per-shard bases are the disks' recovered images
      stamped [base_ts], and start tailing each WAL from its current
      end. The store must be quiescent: WAL batches flushed and no
      cross-shard transaction in flight (otherwise a partially-durable
      transaction would fold into the base below its timestamp).
      Installs each disk's truncation gate and observer
      ({!Lvm_rvm.Ramdisk.set_truncate_gate}/[set_on_truncate]) — WAL
      recycling is deferred (by at most one commit) until the view has
      parsed the bytes it would consume. *)

  val detach : t -> unit
  (** Uninstall the truncation hooks and invalidate all snapshots. *)

  val event : t -> event -> unit
  val tick : t -> unit
  (** Advance every shard's walk and prune unreachable versions. *)

  val cut : t -> int
  (** The consistent cut: every transaction at or below it is applied on
      every shard, monotone across calls. *)

  val floor : t -> int
  (** Oldest as-of timestamp still readable (older versions have been
      folded into the base images). *)

  val route_at : t -> ts:int -> int array
end

type snapshot

val acquire : View.t -> snapshot
(** Snapshot at the current cut. Never blocks writers and never fails;
    release with {!release} so version history behind it can be pruned. *)

val as_of : View.t -> ts:int -> (snapshot, Lvm.Lvm_error.t) result
(** Time-travel snapshot at exactly [ts], pinning the routing that was
    in effect at [ts]. [Error (Snapshot_unavailable _)] outside
    [[floor, cut]]. *)

val read : snapshot -> key:int -> (int, Lvm.Lvm_error.t) result
(** Wait-free versioned read. [Error (Snapshot_unavailable _)] on a
    released or recovery-invalidated snapshot, [Error (Invalid_key _)]
    out of key range. *)

val release : snapshot -> unit
val snapshot_ts : snapshot -> int

(** Incremental applier over an LVM {e log segment} (not the WAL): the
    consumer of {!Lvm.Log_reader.fold_from}. Each {!Applier.tick}
    resumes from the last applied timestamp instead of rescanning sealed
    extents from zero, building addr -> (ts, value) version chains. *)
module Applier : sig
  type t

  val create : Lvm_vm.Kernel.t -> Lvm_vm.Segment.t -> t
  val tick : t -> int
  (** Apply records newer than {!last_ts}; returns how many. *)

  val last_ts : t -> int
  val value : t -> addr:int -> int option
  val value_as_of : t -> addr:int -> ts:int -> int option
end
