(* Multi-version read snapshots derived from the per-shard WALs.

   The view tails each shard's RAM-disk WAL (the same byte stream the
   recovery and replication layers consume) into a versioned word store
   keyed by commit timestamp, and serves lock-free snapshot reads at a
   GVT-style consistent cut — the minimum of the per-shard applied
   frontiers. Commit timestamps are allocated by the store (one global
   clock; a cross-shard transaction carries one timestamp on every
   participant), delivered as [Commit] stamp events; the WAL supplies
   the write payloads, the stamps supply the version order. *)

open Lvm_rvm

type event =
  | Commit of { shard : int; txn : int; ts : int }
  | Route of { ts : int; route : int array }
  | Reset of { ts : int; route : int array }

let mask32 = 0xFFFFFFFF

module View = struct
  type source = {
    shards : int;
    keys : int;
    off_of_key : int -> int;
    bucket : int -> int;
    disk : int -> Ramdisk.t;
    watermark : unit -> int;
    route : int array;
    obs : Lvm_obs.Ctx.t;
    history : int;
  }

  type shard_state = {
    mutable base : Bytes.t; (* every version <= base_ts folded in *)
    mutable base_ts : int;
    mutable phys_cursor : int; (* WAL byte offset of the next unparsed record *)
    stamps : (int, int) Hashtbl.t; (* rlvm txn id -> commit timestamp *)
    pending : (int, (int * int * int) list ref) Hashtbl.t;
        (* open txn id -> (off, size, value) writes, newest first *)
    versions : (int, (int * int) list) Hashtbl.t;
        (* word offset -> (ts, word value) chain, newest first *)
    mutable applied_ts : int;
    mutable stalled : bool;
        (* a durable commit marker whose stamp has not arrived yet: the
           store allocates the timestamp after [Rlvm.commit] returns, and
           the commit path yields to the scheduler in between — the walk
           parks on the marker until the stamp event lands *)
  }

  type t = {
    src : source;
    sh : shard_state array;
    mutable route : int array; (* current routing, bucket -> shard *)
    mutable route_hist : (int * int array) list;
        (* cutover history, newest first; resolves as-of routing *)
    mutable epoch : int; (* bumped by [Reset]: outstanding snapshots die *)
    mutable max_cut : int;
    live : (int, int) Hashtbl.t; (* snapshot id -> ts, the prune floor *)
    mutable next_snap : int;
    c_applied : Lvm_obs.Counter.counter;
    c_snapshots : Lvm_obs.Counter.counter;
    c_asof : Lvm_obs.Counter.counter;
    c_reads : Lvm_obs.Counter.counter;
    c_pruned : Lvm_obs.Counter.counter;
    c_age : Lvm_obs.Counter.counter; (* gauge: staleness of the last cut *)
  }

  let word_at bytes off = Int32.to_int (Bytes.get_int32_le bytes off) land mask32

  (* Latest version of the word at [off] visible at [ts] ([max_int] for
     "newest"): the chain is newest-first, so the first entry at or below
     [ts] wins; the base image backs everything at or below [base_ts]. *)
  let shard_value sh ~off ~ts =
    let rec find = function
      | (ts', v) :: _ when ts' <= ts -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    let chain =
      match Hashtbl.find_opt sh.versions off with Some c -> c | None -> []
    in
    match find chain with Some v -> v | None -> word_at sh.base off

  let push_version sh ~off ~ts ~value =
    let chain =
      match Hashtbl.find_opt sh.versions off with Some c -> c | None -> []
    in
    (* Per-shard commit order is timestamp order under the store's claim
       discipline, so this is an O(1) cons in practice; the insertion
       sort is defensive. A same-timestamp push overwrites (one cross-
       shard transaction writing a word twice coalesces to its final
       value). *)
    let rec ins = function
      | (ts', _) :: rest when ts' = ts -> (ts, value) :: rest
      | (ts', _) :: _ as older when ts' < ts -> (ts, value) :: older
      | newer :: rest -> newer :: ins rest
      | [] -> [ (ts, value) ]
    in
    Hashtbl.replace sh.versions off (ins chain)

  (* Fold one transaction's writes in, as one version per touched word.
     The store writes whole aligned words; sub-word redo (possible in a
     raw WAL) is folded read-modify-write against the newest word. *)
  let apply_writes v sh ~ts writes =
    List.iter
      (fun (off, size, value) ->
        let woff = off - (off land 3) in
        let nw =
          if size >= 4 || off land 3 + size > 4 then value land mask32
          else begin
            let b = Bytes.create 4 in
            Bytes.set_int32_le b 0
              (Int32.of_int (shard_value sh ~off:woff ~ts:max_int));
            (match size with
            | 1 -> Bytes.set_uint8 b (off land 3) (value land 0xFF)
            | _ -> Bytes.set_uint16_le b (off land 3) (value land 0xFFFF));
            word_at b 0
          end
        in
        push_version sh ~off:woff ~ts ~value:nw;
        Lvm_obs.Counter.incr v.c_applied)
      writes

  let data_value bytes =
    match Bytes.length bytes with
    | 1 -> (Bytes.get_uint8 bytes 0, 1)
    | 2 -> (Bytes.get_uint16_le bytes 0, 2)
    | _ -> (word_at bytes 0, 4)

  let buffer_write sh ~txn w =
    match Hashtbl.find_opt sh.pending txn with
    | Some r -> r := w :: !r
    | None -> Hashtbl.replace sh.pending txn (ref [ w ])

  exception Stall of int

  (* Advance one shard's walk over its WAL: buffer redo payloads by
     transaction id, apply a transaction when its commit marker and its
     stamp have both arrived. The walk parks (without error) on a marker
     whose stamp is still in flight and on any unforced tail —
     [Ramdisk.wal_fold] never reads past the durable frontier, which is
     what makes group-commit visibility correct for free: acknowledged
     but unforced commits stay invisible, and their stamps hold the
     frontier back (see [frontier]). *)
  let tick_shard v s =
    let sh = v.sh.(s) in
    let disk = v.src.disk s in
    let entries, next =
      Ramdisk.wal_fold disk ~off:sh.phys_cursor ~init:[] ~f:(fun acc ~off e ->
          (off, e) :: acc)
    in
    sh.stalled <- false;
    let cursor = ref next in
    (try
       List.iter
         (fun (off, e) ->
           match e with
           | Ramdisk.Data { txn; off = doff; bytes } ->
             let value, size = data_value bytes in
             buffer_write sh ~txn (doff, size, value)
           | Ramdisk.Encoded { txn; payload } ->
             let records, _ =
               Lvm_machine.Log_record.Codec.decode_fragment payload ~pos:0
                 ~len:(Bytes.length payload)
             in
             List.iter
               (fun (r : Lvm_machine.Log_record.t) ->
                 if not r.Lvm_machine.Log_record.pre_image then
                   buffer_write sh ~txn
                     ( r.Lvm_machine.Log_record.addr,
                       r.Lvm_machine.Log_record.size,
                       r.Lvm_machine.Log_record.value ))
               records
           | Ramdisk.Commit { txn } | Ramdisk.Snapshot { snap = txn } -> (
             match Hashtbl.find_opt sh.stamps txn with
             | None ->
               sh.stalled <- true;
               raise (Stall off)
             | Some ts ->
               let writes =
                 match Hashtbl.find_opt sh.pending txn with
                 | Some r -> List.rev !r
                 | None -> []
               in
               Hashtbl.remove sh.pending txn;
               Hashtbl.remove sh.stamps txn;
               apply_writes v sh ~ts writes;
               if ts > sh.applied_ts then sh.applied_ts <- ts))
         (List.rev entries)
     with Stall off -> cursor := off);
    sh.phys_cursor <- !cursor

  (* The shard's applied frontier: with a stamped-but-unapplied commit
     (unforced under group commit, or a parked marker) the frontier is
     pinned just below the oldest such stamp; caught fully up it is the
     store's watermark (idle shards must not hold the cut back); mid-walk
     it is the highest applied timestamp. *)
  let frontier v s =
    let sh = v.sh.(s) in
    let unapplied =
      Hashtbl.fold
        (fun _ ts acc ->
          match acc with None -> Some ts | Some m -> Some (min m ts))
        sh.stamps None
    in
    match unapplied with
    | Some ts -> ts - 1
    | None ->
      if (not sh.stalled) && sh.phys_cursor >= Ramdisk.durable_bytes (v.src.disk s)
      then v.src.watermark ()
      else sh.applied_ts

  let floor v =
    Array.fold_left (fun acc sh -> max acc sh.base_ts) min_int v.sh

  (* The consistent cut. Clamping to the running maximum is safe: at the
     moment the cut reached [max_cut], every shard had applied all its
     commits at or below it, and later commits only draw timestamps
     above the watermark — versions at or below an achieved cut are
     immutable. The clamp keeps successive snapshots monotone even while
     a shard is parked on an in-flight stamp. *)
  let cut v =
    let c = ref max_int in
    for s = 0 to v.src.shards - 1 do
      c := min !c (frontier v s)
    done;
    let c = max !c (floor v) in
    if c > v.max_cut then v.max_cut <- c;
    v.max_cut

  let prune_shard v sh ~to_ts =
    let offs = Hashtbl.fold (fun off _ acc -> off :: acc) sh.versions [] in
    List.iter
      (fun off ->
        let chain = Hashtbl.find sh.versions off in
        (* newest first: the first entry at or below [to_ts] folds into
           the base; it and everything older leave the chain *)
        let rec split kept = function
          | (ts, value) :: older when ts <= to_ts ->
            Bytes.set_int32_le sh.base off (Int32.of_int value);
            Lvm_obs.Counter.add v.c_pruned (1 + List.length older);
            List.rev kept
          | newer :: older -> split (newer :: kept) older
          | [] -> List.rev kept
        in
        match split [] chain with
        | [] -> Hashtbl.remove sh.versions off
        | kept -> Hashtbl.replace sh.versions off kept)
      offs;
    sh.base_ts <- to_ts

  (* Fold versions nobody can read anymore into the base images: the
     prune floor trails the cut by [history] timestamps and never passes
     a live snapshot. Route history is trimmed to the entries still
     resolvable above the new floor. *)
  let prune v =
    let c = cut v in
    let live_min = Hashtbl.fold (fun _ ts acc -> min acc ts) v.live max_int in
    let target = min (c - v.src.history) live_min in
    if target > floor v then begin
      Array.iter (fun sh -> prune_shard v sh ~to_ts:target) v.sh;
      let rec trim = function
        | ((ts, _) as e) :: rest when ts > target -> e :: trim rest
        | ((_, _) as e) :: _ -> [ e ] (* newest entry at or below the floor *)
        | [] -> []
      in
      v.route_hist <- trim v.route_hist
    end

  let tick v =
    for s = 0 to v.src.shards - 1 do
      tick_shard v s
    done;
    prune v

  let reset_shard v s ~ts =
    let sh = v.sh.(s) in
    let disk = v.src.disk s in
    sh.base <- Ramdisk.recovered_image disk;
    sh.base_ts <- ts;
    sh.phys_cursor <- Ramdisk.log_bytes disk;
    Hashtbl.reset sh.stamps;
    Hashtbl.reset sh.pending;
    Hashtbl.reset sh.versions;
    sh.applied_ts <- ts;
    sh.stalled <- false

  let event v = function
    | Commit { shard; txn; ts } ->
      Hashtbl.replace v.sh.(shard).stamps txn ts;
      tick_shard v shard
    | Route { ts; route } ->
      v.route <- Array.copy route;
      v.route_hist <- (ts, Array.copy route) :: v.route_hist
    | Reset { ts; route } ->
      (* Recovery rebuilt the world: every committed effect is folded
         into the recovered images, uncommitted WAL residue will never
         see a stamp (rlvm transaction ids are never reused), and
         outstanding snapshots are invalidated by the epoch bump. *)
      v.epoch <- v.epoch + 1;
      Hashtbl.reset v.live;
      v.route <- Array.copy route;
      v.route_hist <- [ (ts, Array.copy route) ];
      v.max_cut <- ts;
      for s = 0 to v.src.shards - 1 do
        reset_shard v s ~ts
      done

  let route_at v ~ts =
    let rec find = function
      | (ts', r) :: _ when ts' <= ts -> r
      | _ :: rest -> find rest
      | [] -> v.route
    in
    find v.route_hist

  let install_hooks v =
    (* Recycling a shard's WAL is deferred until the view has parsed it
       in full — at most one commit, since the commit path re-checks the
       truncation threshold and the stamp event re-ticks the walk. After
       a truncation rebuilt the log (only unapplied-uncommitted records
       survive, all of them already buffered in [pending]), the cursor
       resnaps to the rebuilt end. *)
    for s = 0 to v.src.shards - 1 do
      let sh = v.sh.(s) in
      let disk = v.src.disk s in
      Ramdisk.set_truncate_gate disk
        (Some
           (fun () ->
             (not sh.stalled) && sh.phys_cursor >= Ramdisk.log_bytes disk));
      Ramdisk.set_on_truncate disk
        (Some (fun ~removed:_ -> sh.phys_cursor <- Ramdisk.log_bytes disk))
    done

  let attach src ~base_ts =
    if src.shards <= 0 then invalid_arg "Lvm_mvcc.View.attach: no shards";
    let sh =
      Array.init src.shards (fun s ->
          let disk = src.disk s in
          { base = Ramdisk.recovered_image disk;
            base_ts;
            phys_cursor = Ramdisk.log_bytes disk;
            stamps = Hashtbl.create 61;
            pending = Hashtbl.create 7;
            versions = Hashtbl.create 997;
            applied_ts = base_ts;
            stalled = false })
    in
    let obs = src.obs in
    let v =
      { src;
        sh;
        route = Array.copy src.route;
        route_hist = [ (base_ts, Array.copy src.route) ];
        epoch = 0;
        max_cut = base_ts;
        live = Hashtbl.create 31;
        next_snap = 1;
        c_applied = Lvm_obs.Ctx.counter obs "mvcc.applied";
        c_snapshots = Lvm_obs.Ctx.counter obs "mvcc.snapshots";
        c_asof = Lvm_obs.Ctx.counter obs "mvcc.asof";
        c_reads = Lvm_obs.Ctx.counter obs "mvcc.reads";
        c_pruned = Lvm_obs.Ctx.counter obs "mvcc.pruned";
        c_age = Lvm_obs.Ctx.counter obs "mvcc.snapshot_age" }
    in
    install_hooks v;
    v

  let detach v =
    for s = 0 to v.src.shards - 1 do
      let disk = v.src.disk s in
      Ramdisk.set_truncate_gate disk None;
      Ramdisk.set_on_truncate disk None
    done;
    v.epoch <- v.epoch + 1;
    Hashtbl.reset v.live
end

(* {1 Snapshots} *)

type snapshot = {
  v : View.t;
  s_ts : int;
  s_route : int array; (* pinned as-of routing: split/merge cannot move it *)
  s_epoch : int;
  s_id : int;
  mutable s_live : bool;
}

let unavailable v ~ts =
  Lvm.Lvm_error.Snapshot_unavailable
    { ts; floor = View.floor v; frontier = View.cut v }

let make_snapshot (v : View.t) ~ts ~route =
  let id = v.next_snap in
  v.next_snap <- id + 1;
  Hashtbl.replace v.live id ts;
  Lvm_obs.Counter.set v.c_age (v.src.watermark () - ts);
  { v; s_ts = ts; s_route = Array.copy route; s_epoch = v.epoch; s_id = id;
    s_live = true }

let acquire (v : View.t) =
  View.tick v;
  let ts = View.cut v in
  Lvm_obs.Counter.incr v.c_snapshots;
  make_snapshot v ~ts ~route:v.route

let as_of (v : View.t) ~ts =
  View.tick v;
  if ts < View.floor v || ts > View.cut v then Error (unavailable v ~ts)
  else begin
    Lvm_obs.Counter.incr v.c_asof;
    Ok (make_snapshot v ~ts ~route:(View.route_at v ~ts))
  end

let snapshot_ts s = s.s_ts

let release s =
  if s.s_live then begin
    s.s_live <- false;
    Hashtbl.remove s.v.live s.s_id
  end

(* Wait-free once acquired: a read touches only the pinned route array
   and the version chains — no shard worker, no lock, no clock. *)
let read s ~key =
  let v = s.v in
  if (not s.s_live) || s.s_epoch <> v.epoch then Error (unavailable v ~ts:s.s_ts)
  else if key < 0 || key >= v.src.keys then
    Error (Lvm.Lvm_error.Invalid_key { key })
  else begin
    let shard = s.s_route.(v.src.bucket key) in
    let off = v.src.off_of_key key in
    Lvm_obs.Counter.incr v.c_reads;
    Ok (View.shard_value v.sh.(shard) ~off ~ts:s.s_ts)
  end

(* {1 Incremental LVM-log applier}

   The satellite consumer of [Log_reader.fold_from]: a versioned word
   store fed straight from an LVM log segment's records (not the WAL),
   resuming each tick from its applied-frontier timestamp instead of
   rescanning sealed extents from zero. *)

module Applier = struct
  type t = {
    k : Lvm_vm.Kernel.t;
    ls : Lvm_vm.Segment.t;
    versions : (int, (int * int) list) Hashtbl.t; (* addr -> (ts, value) *)
    mutable last_ts : int;
    mutable applied : int;
  }

  let create k ls =
    { k; ls; versions = Hashtbl.create 97; last_ts = 0; applied = 0 }

  let last_ts t = t.last_ts

  let tick t =
    let before = t.applied in
    let (), last =
      Lvm.Log_reader.fold_from t.k t.ls ~ts:t.last_ts ~init:() ~f:(fun () ~off:_ r ->
          if not r.Lvm_machine.Log_record.pre_image then begin
            let addr = r.Lvm_machine.Log_record.addr in
            let ts = r.Lvm_machine.Log_record.timestamp in
            let chain =
              match Hashtbl.find_opt t.versions addr with
              | Some c -> c
              | None -> []
            in
            Hashtbl.replace t.versions addr
              ((ts, r.Lvm_machine.Log_record.value) :: chain);
            t.applied <- t.applied + 1
          end)
    in
    t.last_ts <- last;
    t.applied - before

  let value_as_of t ~addr ~ts =
    let rec find = function
      | (ts', v) :: _ when ts' <= ts -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    match Hashtbl.find_opt t.versions addr with
    | Some chain -> find chain
    | None -> None

  let value t ~addr = value_as_of t ~addr ~ts:max_int
end
