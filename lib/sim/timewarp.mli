(** The optimistic simulation engine: schedulers, message routing, GVT and
    fossil collection (Section 2.4).

    Schedulers run on independent simulated processors. The engine runs
    them in rounds — each scheduler optimistically processes a batch of
    events, then messages are exchanged — so schedulers run ahead of each
    other in virtual time and stragglers and anti-messages arise exactly
    as in a parallel TimeWarp execution. Global virtual time is the
    minimum over all unprocessed and in-flight event times; after each
    round the schedulers commit history below GVT (CULT under LVM state
    saving).

    Determinism: event ordering has a content-based total order and
    application randomness must be derived from event content, so the
    committed execution is identical for any scheduler count — the basis
    of the sequential-equivalence tests. *)

type result = {
  gvt : int;
  elapsed_cycles : int;
      (** Wall-clock of the parallel run: the maximum processor time over
          schedulers. *)
  total_events_processed : int;
  total_events_committed : int;
  total_rollbacks : int;
  total_anti_messages : int;
  total_stragglers : int;
}

type t

val create :
  ?hw:Lvm_machine.Logger.hw -> ?batch:int -> ?cpus:int -> n_schedulers:int ->
  strategy:State_saving.t -> app:Scheduler.app -> unit -> t
(** [batch] is the number of events a scheduler may process per round
    before synchronizing (the optimism window, default 8).

    [cpus] (default 1) selects the machine configuration. With 1, each
    scheduler boots its own single-CPU kernel — independent machines, as
    before. With more, all schedulers share one multi-CPU kernel and are
    pinned round-robin to its processors (scheduler [i] on CPU
    [i mod cpus]), so their memory traffic contends for the shared bus
    and logger exactly as the paper's 4-processor prototype. Both
    configurations are deterministic; their committed results are equal
    but their cycle counts differ (the shared-bus run pays contention). *)

val schedulers : t -> Scheduler.t array

val inject : t -> time:int -> dst:int -> payload:int -> unit
(** Add an initial event (before {!run}). *)

val run : t -> end_time:int -> result
(** Execute until every event strictly before [end_time] is committed. *)

val read_state : t -> obj:int -> word:int -> int
(** Committed state of an object after {!run}. *)

val state_vector : t -> int array
(** All objects' word 0..n flattened, for whole-run equivalence checks:
    element [obj * object_words + word]. *)
