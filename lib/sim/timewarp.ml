type result = {
  gvt : int;
  elapsed_cycles : int;
  total_events_processed : int;
  total_events_committed : int;
  total_rollbacks : int;
  total_anti_messages : int;
  total_stragglers : int;
}

type t = {
  scheds : Scheduler.t array;
  app : Scheduler.app;
  batch : int;
  next_uid : int ref;
  mutable gvt : int;
}

let create ?hw ?(batch = 8) ?(cpus = 1) ~n_schedulers ~strategy ~app () =
  if batch <= 0 then invalid_arg "Timewarp.create: batch must be positive";
  if cpus <= 0 then invalid_arg "Timewarp.create: cpus must be positive";
  let next_uid = ref 0 in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let scheds =
    if cpus = 1 then
      (* one kernel per scheduler: the original round-based emulation *)
      Array.init n_schedulers (fun id ->
          Scheduler.create ?hw ~id ~n_schedulers ~strategy ~app ~fresh_uid ())
    else begin
      (* the ParaDiGM configuration: one shared machine, schedulers
         pinned round-robin to its CPUs, contending for one bus and one
         logger *)
      let kernel =
        Lvm_vm.Kernel.create ?hw ~frames:(8192 * n_schedulers) ~cpus ()
      in
      Array.init n_schedulers (fun id ->
          Scheduler.create ?hw ~kernel ~cpu:(id mod cpus) ~id ~n_schedulers
            ~strategy ~app ~fresh_uid ())
    end
  in
  { scheds; app; batch; next_uid; gvt = 0 }

let schedulers t = t.scheds
let sched_of t obj = t.scheds.(obj mod Array.length t.scheds)

let inject t ~time ~dst ~payload =
  if dst < 0 || dst >= t.app.n_objects then
    invalid_arg "Timewarp.inject: unknown object";
  let uid = !(t.next_uid) in
  incr t.next_uid;
  Scheduler.enqueue (sched_of t dst)
    { Event.time; dst; payload; src = -1; send_time = 0; uid }

(* Deliver every outbound message; returns how many were moved. Repeats
   until quiescent because a delivery can trigger a rollback that sends
   anti-messages. *)
let rec deliver t =
  let moved = ref 0 in
  Array.iter
    (fun s ->
      List.iter
        (fun (dst, msg) ->
          incr moved;
          Scheduler.receive t.scheds.(dst) msg)
        (Scheduler.drain_outbox s))
    t.scheds;
  if !moved > 0 then !moved + deliver t else 0

let compute_gvt t =
  Array.fold_left
    (fun acc s ->
      match Scheduler.min_pending_time s with
      | None -> acc
      | Some m -> min acc m)
    max_int t.scheds

let run t ~end_time =
  let rec loop () =
    (* one optimistic round *)
    Array.iter
      (fun s ->
        let rec batch n =
          if n > 0 && Scheduler.step s ~horizon:(end_time - 1) then
            batch (n - 1)
        in
        batch t.batch)
      t.scheds;
    ignore (deliver t);
    let gvt = compute_gvt t in
    let gvt = min gvt end_time in
    t.gvt <- gvt;
    Array.iter (fun s -> Scheduler.fossil_collect s ~gvt) t.scheds;
    if gvt < end_time then loop ()
  in
  loop ();
  let sum f = Array.fold_left (fun a s -> a + f (Scheduler.stats s)) 0 t.scheds
  in
  {
    gvt = t.gvt;
    elapsed_cycles =
      Array.fold_left (fun a s -> max a (Scheduler.time s)) 0 t.scheds;
    total_events_processed = sum (fun st -> st.Scheduler.events_processed);
    total_events_committed = sum (fun st -> st.Scheduler.events_committed);
    total_rollbacks = sum (fun st -> st.Scheduler.rollbacks);
    total_anti_messages = sum (fun st -> st.Scheduler.anti_messages_sent);
    total_stragglers = sum (fun st -> st.Scheduler.stragglers);
  }

let read_state t ~obj ~word = Scheduler.read_state (sched_of t obj) ~obj ~word

let state_vector t =
  Array.init
    (t.app.n_objects * t.app.object_words)
    (fun i ->
      let obj = i / t.app.object_words in
      let word = i mod t.app.object_words in
      read_state t ~obj ~word)
