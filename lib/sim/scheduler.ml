open Lvm_machine
open Lvm_vm

type stats = {
  mutable events_processed : int;
  mutable events_committed : int;
  mutable rollbacks : int;
  mutable anti_messages_sent : int;
  mutable annihilations : int;
  mutable stragglers : int;
}

type ctx = {
  self : int;
  now : int;
  read : int -> int;
  write : int -> int -> unit;
  send : dst:int -> delay:int -> payload:int -> unit;
  compute : int -> unit;
}

type app = {
  n_objects : int;
  object_words : int;
  init_word : obj:int -> word:int -> int;
  handle : ctx -> payload:int -> unit;
}

type processed = {
  event : Event.t;
  sent : Event.t list; (* send order *)
  save_off : int; (* copy-based: slot holding the pre-state of the event's
                     object in the save area *)
}

type t = {
  id : int;
  n_schedulers : int;
  strategy : State_saving.t;
  app : app;
  k : Kernel.t;
  cpu : int; (* which CPU of [k] this scheduler is pinned to *)
  space : Address_space.t;
  working : Segment.t;
  checkpoint : Segment.t;
  region : Region.t;
  base : int;
  ls : Segment.t option;
  save_seg : Segment.t option;
  save_slots : int; (* capacity of the save area, in object-sized slots *)
  mutable save_free : int list; (* recycled slots *)
  mutable save_next : int; (* high-water mark *)
  lvt_cell_off : int;
  n_local : int;
  mutable lvt : int;
  mutable checkpoint_time : int;
  mutable queue : Event_queue.t;
  mutable processed : processed list; (* newest first *)
  mutable outbox : (int * Event.msg) list; (* newest first *)
  mutable anti_pending : Event.t list;
  mutable sending : Event.t list; (* reversed send buffer of current event *)
  fresh_uid : unit -> int;
  stats : stats;
  c_rollbacks : Lvm_obs.Counter.counter;
  c_committed : Lvm_obs.Counter.counter;
}

let local_of t obj =
  assert (obj mod t.n_schedulers = t.id);
  obj / t.n_schedulers

let obj_off t obj = local_of t obj * t.app.object_words * Addr.word_size

let create ?hw ?kernel ?(cpu = 0) ~id ~n_schedulers ~strategy ~app ~fresh_uid
    () =
  if n_schedulers <= 0 then invalid_arg "Scheduler.create: n_schedulers";
  if strategy = State_saving.Page_protect then
    invalid_arg
      "Scheduler.create: page-protect checkpointing has no per-event \
       rollback; use it with Synthetic only";
  let k =
    match kernel with
    | Some k ->
      if cpu < 0 || cpu >= Kernel.cpus k then
        invalid_arg "Scheduler.create: cpu out of range for shared kernel";
      (* charge this scheduler's setup (segment init, prefaults) to its
         own processor *)
      Kernel.set_cpu k cpu;
      k
    | None -> Kernel.create ?hw ~frames:8192 ()
  in
  let space = Kernel.create_space k in
  let n_local =
    (app.n_objects / n_schedulers)
    + if id < app.n_objects mod n_schedulers then 1 else 0
  in
  let state_bytes = n_local * app.object_words * Addr.word_size in
  let seg_size = state_bytes + Addr.word_size in
  let working = Kernel.create_segment k ~size:seg_size in
  let checkpoint = Kernel.create_segment k ~size:seg_size in
  (* initialize the checkpoint image *)
  for local = 0 to n_local - 1 do
    let obj = (local * n_schedulers) + id in
    for word = 0 to app.object_words - 1 do
      Kernel.seg_write_raw k checkpoint
        ~off:(((local * app.object_words) + word) * Addr.word_size)
        ~size:4
        (app.init_word ~obj ~word land 0xFFFFFFFF)
    done
  done;
  Kernel.declare_source k ~dst:working ~src:checkpoint ~offset:0;
  let region = Kernel.create_region k working in
  let ls =
    match strategy with
    | State_saving.Lvm_based ->
      let ls = Kernel.create_log_segment k ~size:(64 * Addr.page_size) in
      Kernel.set_region_log k region (Some ls);
      Some ls
    | State_saving.Copy_based | State_saving.Page_protect
    | State_saving.No_saving -> None
  in
  let base = Kernel.bind k space region in
  let save_seg, save_bytes =
    match strategy with
    | State_saving.Copy_based ->
      let bytes =
        Addr.align_up
          (max (256 * app.object_words * Addr.word_size) (64 * Addr.page_size))
          ~alignment:Addr.page_size
      in
      (Some (Kernel.create_segment k ~size:bytes), bytes)
    | State_saving.Lvm_based | State_saving.Page_protect
    | State_saving.No_saving -> (None, 0)
  in
  {
    id;
    n_schedulers;
    strategy;
    app;
    k;
    cpu;
    space;
    working;
    checkpoint;
    region;
    base;
    ls;
    save_seg;
    save_slots = save_bytes / (max 1 (app.object_words * Addr.word_size));
    save_free = [];
    save_next = 0;
    lvt_cell_off = state_bytes;
    n_local;
    lvt = 0;
    checkpoint_time = 0;
    queue = Event_queue.empty;
    processed = [];
    outbox = [];
    anti_pending = [];
    sending = [];
    fresh_uid;
    stats =
      {
        events_processed = 0;
        events_committed = 0;
        rollbacks = 0;
        anti_messages_sent = 0;
        annihilations = 0;
        stragglers = 0;
      };
    c_rollbacks = Lvm_obs.Ctx.counter (Kernel.obs k) "sim.rollbacks";
    c_committed = Lvm_obs.Ctx.counter (Kernel.obs k) "sim.events_committed";
  }

let id t = t.id
let kernel t = t.k

(* On a shared multi-CPU kernel, every entry point that does kernel work
   first switches the machine to this scheduler's processor; with a
   dedicated kernel ([cpu] = 0) this is a no-op. *)
let pin t = Kernel.set_cpu t.k t.cpu

let time t = Kernel.cpu_time t.k ~cpu:t.cpu
let lvt t = t.lvt
let stats t = t.stats
let owns t obj = obj >= 0 && obj < t.app.n_objects && obj mod t.n_schedulers = t.id
let queue_empty t = Event_queue.is_empty t.queue
let min_pending_time t = Event_queue.min_time t.queue
let enqueue t ev = t.queue <- Event_queue.add t.queue ev

(* {1 State restoration} *)

let is_marker t (r : Log_record.t) =
  match Lvm.Log_reader.locate t.k r with
  | Some (seg, off) ->
    Segment.id seg = Segment.id t.working && off = t.lvt_cell_off
  | None -> false

let restore_lvm t ~target =
  let ls = Option.get t.ls in
  Kernel.set_logging_enabled t.k t.region false;
  Kernel.reset_deferred_copy t.k t.space ~start:t.base
    ~len:(Region.size t.region);
  let stop =
    Lvm.Checkpoint.roll_forward t.k ~log:ls ~from:0 ~apply:(fun ~off:_ r ->
        if r.Log_record.pre_image then `Continue
        else if is_marker t r && r.Log_record.value >= target then `Stop
        else
          match Lvm.Log_reader.locate t.k r with
          | Some (seg, off) when Segment.id seg = Segment.id t.working ->
            Lvm.Checkpoint.apply_record t.k ~target:t.working ~off r;
            `Continue
          | Some _ | None -> `Continue)
  in
  Lvm_log.truncate_suffix (Lvm_log.of_segment t.k ls) ~new_end:stop;
  Kernel.set_logging_enabled t.k t.region true

let free_save_slot t p =
  if t.strategy = State_saving.Copy_based then
    t.save_free <- p.save_off :: t.save_free

let restore_copy t p =
  let seg = Option.get t.save_seg in
  let len = t.app.object_words * Addr.word_size in
  let src = Kernel.paddr_of t.k seg ~off:(p.save_off * len) in
  let dst = Kernel.paddr_of t.k t.working ~off:(obj_off t p.event.Event.dst) in
  Machine.bcopy (Kernel.machine t.k) ~src ~dst ~len;
  free_save_slot t p

(* {1 Rollback} *)

let rollback t ~target =
  t.stats.rollbacks <- t.stats.rollbacks + 1;
  Lvm_obs.Counter.incr t.c_rollbacks;
  let undone, kept =
    List.partition (fun p -> p.event.Event.time >= target) t.processed
  in
  Lvm_obs.Ctx.event (Kernel.obs t.k) ~at:(Kernel.time t.k)
    (Lvm_obs.Event.Rollback
       { scheduler = t.id; target; undone = List.length undone });
  t.processed <- kept;
  (match t.strategy with
  | State_saving.Lvm_based -> restore_lvm t ~target
  | State_saving.Copy_based -> List.iter (restore_copy t) undone
  | State_saving.No_saving ->
    invalid_arg "Scheduler: rollback without state saving (conservative \
                 schedulers must never receive stragglers)"
  | State_saving.Page_protect -> assert false);
  (* re-enqueue the undone input events *)
  List.iter (fun p -> t.queue <- Event_queue.add t.queue p.event) undone;
  (* cancel their outputs *)
  let self_antis = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (ev : Event.t) ->
          t.stats.anti_messages_sent <- t.stats.anti_messages_sent + 1;
          let dst_sched = ev.Event.dst mod t.n_schedulers in
          if dst_sched = t.id then self_antis := ev :: !self_antis
          else t.outbox <- (dst_sched, Event.anti ev) :: t.outbox)
        p.sent)
    undone;
  List.iter
    (fun (ev : Event.t) ->
      match Event_queue.remove_uid t.queue ~uid:ev.Event.uid with
      | Some (_, q) ->
        t.queue <- q;
        t.stats.annihilations <- t.stats.annihilations + 1
      | None ->
        (* A self-destined event is either pending or was undone and
           re-enqueued above; it must be present. *)
        assert false)
    !self_antis;
  t.lvt <-
    (match kept with
    | p :: _ -> p.event.Event.time
    | [] -> t.checkpoint_time)

(* {1 Receiving} *)

let receive t msg =
  pin t;
  let ev = msg.Event.event in
  if not (owns t ev.Event.dst) then
    invalid_arg "Scheduler.receive: object not owned by this scheduler";
  match msg.Event.sign with
  | Event.Positive ->
    (* A tie in virtual time also rolls back: committed order must follow
       the deterministic event order even among equal-time events, or the
       optimistic run could diverge from the sequential one. *)
    if ev.Event.time <= t.lvt then begin
      t.stats.stragglers <- t.stats.stragglers + 1;
      rollback t ~target:ev.Event.time
    end;
    if List.exists (fun (a : Event.t) -> a.Event.uid = ev.Event.uid)
        t.anti_pending
    then begin
      t.anti_pending <-
        List.filter (fun (a : Event.t) -> a.Event.uid <> ev.Event.uid)
          t.anti_pending;
      t.stats.annihilations <- t.stats.annihilations + 1
    end
    else t.queue <- Event_queue.add t.queue ev
  | Event.Negative -> (
    match Event_queue.remove_uid t.queue ~uid:ev.Event.uid with
    | Some (_, q) ->
      t.queue <- q;
      t.stats.annihilations <- t.stats.annihilations + 1
    | None ->
      if
        List.exists
          (fun p -> p.event.Event.uid = ev.Event.uid)
          t.processed
      then begin
        (* the victim was optimistically processed: roll back past it *)
        rollback t ~target:ev.Event.time;
        match Event_queue.remove_uid t.queue ~uid:ev.Event.uid with
        | Some (_, q) ->
          t.queue <- q;
          t.stats.annihilations <- t.stats.annihilations + 1
        | None -> assert false
      end
      else t.anti_pending <- ev :: t.anti_pending)

(* {1 Event processing} *)

let ensure_log_capacity t =
  match t.ls with
  | None -> ()
  | Some ls ->
    let log = Lvm_log.of_segment t.k ls in
    if Lvm_log.room log < 2 * Addr.page_size then
      Lvm_log.extend log ~pages:16

(* Save slots are allocated from a free list so a slot is never reused
   while its entry is still live (a plain ring would wrap into live saves
   once rollbacks waste positions). *)
let alloc_save_slot t =
  match t.save_free with
  | slot :: rest ->
    t.save_free <- rest;
    slot
  | [] ->
    if t.save_next >= t.save_slots then
      invalid_arg "Scheduler: save area exhausted";
    let slot = t.save_next in
    t.save_next <- slot + 1;
    slot

let save_object_copy t obj =
  let seg = Option.get t.save_seg in
  let len = t.app.object_words * Addr.word_size in
  let slot = alloc_save_slot t in
  let src = Kernel.paddr_of t.k t.working ~off:(obj_off t obj) in
  let dst = Kernel.paddr_of t.k seg ~off:(slot * len) in
  Machine.bcopy (Kernel.machine t.k) ~src ~dst ~len;
  slot

let make_ctx t (ev : Event.t) =
  let base_off = obj_off t ev.Event.dst in
  {
    self = ev.Event.dst;
    now = ev.Event.time;
    read =
      (fun word ->
        assert (word >= 0 && word < t.app.object_words);
        Kernel.read_word t.k t.space
          (t.base + base_off + (word * Addr.word_size)));
    write =
      (fun word v ->
        assert (word >= 0 && word < t.app.object_words);
        Kernel.write_word t.k t.space
          (t.base + base_off + (word * Addr.word_size))
          v);
    send =
      (fun ~dst ~delay ~payload ->
        if delay <= 0 then invalid_arg "Scheduler: send delay must be positive";
        if dst < 0 || dst >= t.app.n_objects then
          invalid_arg "Scheduler: send to unknown object";
        let out =
          {
            Event.time = ev.Event.time + delay;
            dst;
            payload;
            src = ev.Event.dst;
            send_time = ev.Event.time;
            uid = t.fresh_uid ();
          }
        in
        t.sending <- out :: t.sending;
        let dst_sched = dst mod t.n_schedulers in
        if dst_sched = t.id then t.queue <- Event_queue.add t.queue out
        else t.outbox <- (dst_sched, Event.positive out) :: t.outbox);
    compute = (fun c -> Kernel.compute t.k c);
  }

let step t ~horizon =
  pin t;
  match Event_queue.min t.queue with
  | None -> false
  | Some ev when ev.Event.time > horizon -> false
  | Some ev ->
    t.queue <- Event_queue.remove_min t.queue;
    let save_off =
      match t.strategy with
      | State_saving.Copy_based -> save_object_copy t ev.Event.dst
      | State_saving.Lvm_based ->
        ensure_log_capacity t;
        (* the LVT marker write (footnote 2) *)
        Kernel.write_word t.k t.space (t.base + t.lvt_cell_off)
          ev.Event.time;
        0
      | State_saving.Page_protect | State_saving.No_saving -> 0
    in
    t.sending <- [];
    t.app.handle (make_ctx t ev) ~payload:ev.Event.payload;
    t.processed <-
      { event = ev; sent = List.rev t.sending; save_off } :: t.processed;
    t.sending <- [];
    t.lvt <- ev.Event.time;
    t.stats.events_processed <- t.stats.events_processed + 1;
    true

let drain_outbox t =
  let out = List.rev t.outbox in
  t.outbox <- [];
  out

(* {1 Fossil collection / CULT} *)

(* CULT is deferred until the log has grown past this, standing in for
   the paper's asynchronous / only-when-not-the-bottleneck CULT policy
   (Section 2.4): committing history every GVT round would waste the
   processor on checkpoint maintenance. *)
let cult_threshold_bytes = 8 * Addr.page_size

let fossil_collect t ~gvt =
  pin t;
  if gvt > t.checkpoint_time then begin
    let committed, live =
      List.partition (fun p -> p.event.Event.time < gvt) t.processed
    in
    t.stats.events_committed <-
      t.stats.events_committed + List.length committed;
    Lvm_obs.Counter.add t.c_committed (List.length committed);
    Lvm_obs.Ctx.event (Kernel.obs t.k) ~at:(Kernel.time t.k)
      (Lvm_obs.Event.Commit
         { scheduler = t.id; gvt; events = List.length committed });
    List.iter (free_save_slot t) committed;
    t.processed <- live;
    (match t.strategy with
    | State_saving.Lvm_based ->
      let ls = Option.get t.ls in
      Kernel.sync_log t.k ls;
      if Segment.write_pos ls >= cult_threshold_bytes then begin
        let governing = ref min_int in
        ignore
          (Lvm.Checkpoint.cult t.k ~working:t.working
             ~checkpoint:t.checkpoint ~log:ls
             ~upto:(fun r ->
               if is_marker t r then begin
                 governing := r.Log_record.value;
                 r.Log_record.value < gvt
               end
               else true));
        (* the checkpoint segment now reflects every update below gvt *)
        t.checkpoint_time <- gvt
      end
    | State_saving.Copy_based | State_saving.Page_protect
    | State_saving.No_saving ->
      t.checkpoint_time <- gvt);
    if t.lvt < t.checkpoint_time then t.lvt <- t.checkpoint_time
  end

let read_state t ~obj ~word =
  pin t;
  if not (owns t obj) then invalid_arg "Scheduler.read_state: not owned";
  Kernel.seg_read_raw t.k t.working
    ~off:(obj_off t obj + (word * Addr.word_size))
    ~size:4
