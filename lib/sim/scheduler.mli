(** A TimeWarp scheduler: one optimistic logical process owning a set of
    simulation objects (Section 2.4, Figure 3).

    Each scheduler runs on its own simulated processor (its own kernel and
    machine clock) and owns a working segment holding its objects' state, a
    checkpoint segment that is the working segment's deferred-copy source,
    and — under LVM state saving — a log segment receiving a record of
    every state write. A reserved logged word holds the scheduler's local
    virtual time; the records of its updates are the markers the rollback
    and CULT scans key on (footnote 2 of the paper).

    Rollback to time [t]: undo processed events at or after [t], send
    anti-messages for their output, and restore state — by
    [reset_deferred_copy] plus roll-forward under LVM, or by restoring
    per-event copies under copy-based saving. *)

type stats = {
  mutable events_processed : int;  (** Including re-processed. *)
  mutable events_committed : int;  (** Fossil-collected below GVT. *)
  mutable rollbacks : int;
  mutable anti_messages_sent : int;
  mutable annihilations : int;
  mutable stragglers : int;
}

type ctx = {
  self : int;  (** Global id of the object handling the event. *)
  now : int;  (** The event's virtual time. *)
  read : int -> int;  (** Read a state word of the handling object. *)
  write : int -> int -> unit;
  send : dst:int -> delay:int -> payload:int -> unit;
      (** Schedule an event [delay > 0] in the future at any object. *)
  compute : int -> unit;  (** Model event-processing CPU work. *)
}

type app = {
  n_objects : int;
  object_words : int;
  init_word : obj:int -> word:int -> int;
  handle : ctx -> payload:int -> unit;
}

type t

val create :
  ?hw:Lvm_machine.Logger.hw -> ?kernel:Lvm_vm.Kernel.t -> ?cpu:int ->
  id:int -> n_schedulers:int ->
  strategy:State_saving.t -> app:app -> fresh_uid:(unit -> int) -> unit -> t
(** Objects are distributed round-robin: object [o] lives on scheduler
    [o mod n_schedulers].

    By default each scheduler boots its own single-CPU kernel (the
    original round-based emulation of parallelism). With [kernel], the
    scheduler instead runs on CPU [cpu] (default 0) of the given shared
    multi-CPU kernel — the paper's actual ParaDiGM configuration — and
    every entry point pins the machine to that CPU first, so its work is
    charged to its own clock and cache while contending for the shared
    bus and logger. [hw] is ignored when [kernel] is supplied. *)

val id : t -> int
val kernel : t -> Lvm_vm.Kernel.t
val time : t -> int
(** This scheduler's processor clock (its pinned CPU's, on a shared
    kernel), in cycles. *)

val lvt : t -> int
val stats : t -> stats
val owns : t -> int -> bool
val queue_empty : t -> bool

val min_pending_time : t -> int option
(** Earliest unprocessed event time (for GVT computation). *)

val enqueue : t -> Event.t -> unit
(** Insert an initial event (no straggler handling). *)

val receive : t -> Event.msg -> unit
(** Deliver a message: a straggler triggers rollback; an anti-message
    annihilates its positive counterpart (rolling back first if the victim
    was already processed). *)

val step : t -> horizon:int -> bool
(** Process the next pending event with time at most [horizon]. Returns
    false if there was none. *)

val drain_outbox : t -> (int * Event.msg) list
(** Collect and clear messages produced since the last drain, as
    [(destination scheduler, message)] pairs, in send order. *)

val fossil_collect : t -> gvt:int -> unit
(** Commit history strictly below [gvt]: discard processed entries (and
    saved copies) below it. Under LVM, CULT — applying log records older
    than [gvt] to the checkpoint segment and truncating the log — is
    deferred until the log has grown past a threshold, mirroring the
    paper's advice to defer CULT off the critical path (Section 2.4). *)

val read_state : t -> obj:int -> word:int -> int
(** Untimed state inspection for checking results. *)
