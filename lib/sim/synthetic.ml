open Lvm_machine
open Lvm_vm

type params = {
  events : int;
  c : int;
  s : int;
  w : int;
  objects : int;
  checkpoint_interval : int;
}

let default_params =
  { events = 2000; c = 512; s = 64; w = 2; objects = 64;
    checkpoint_interval = 50 }

type run_result = {
  cycles : int;
  per_event : float;
  overloads : int;
  log_records : int;
  protect_faults : int;
}

let validate p =
  if p.events <= 0 || p.c < 0 || p.s <= 0 || p.w < 0 || p.objects <= 0 then
    invalid_arg "Synthetic: bad parameters";
  if p.s mod Addr.word_size <> 0 then
    invalid_arg "Synthetic: object size must be a word multiple"

(* Recycle the log roughly every this many records: stands in for CULT
   running asynchronously on another processor. *)
let recycle_records = 8192

let run ?hw p strategy =
  validate p;
  let k = Kernel.create ?hw ~frames:8192 () in
  let sp = Kernel.create_space k in
  let state_bytes = p.objects * p.s in
  let seg_size = state_bytes + Addr.word_size in
  let working = Kernel.create_segment k ~size:seg_size in
  let checkpoint = Kernel.create_segment k ~size:seg_size in
  Kernel.declare_source k ~dst:working ~src:checkpoint ~offset:0;
  let region = Kernel.create_region k working in
  let ls =
    match strategy with
    | State_saving.Lvm_based ->
      let pages =
        Addr.pages_spanning ((recycle_records + 4096) * Log_record.bytes)
      in
      let ls = Kernel.create_log_segment k ~size:(pages * Addr.page_size) in
      Kernel.set_region_log k region (Some ls);
      Some ls
    | State_saving.Copy_based | State_saving.Page_protect
    | State_saving.No_saving -> None
  in
  let base = Kernel.bind k sp region in
  let lvt_cell = base + state_bytes in
  (* copy-based save ring and page-protect shadow store *)
  let save_bytes = Addr.align_up (64 * p.s) ~alignment:Addr.page_size in
  let save = Kernel.create_segment k ~size:(max save_bytes (8 * Addr.page_size))
  in
  let save_pos = ref 0 in
  let shadow_pos = ref 0 in
  (match strategy with
  | State_saving.Page_protect ->
    Kernel.set_protect_fault_handler k
      (Some
         (fun _sp _r ~vaddr ->
           (* copy the faulting page into the shadow store *)
           let page_base = Addr.page_base (vaddr - base) in
           if !shadow_pos + Addr.page_size > Segment.size save then
             shadow_pos := 0;
           let src = Kernel.paddr_of k working ~off:page_base in
           let dst = Kernel.paddr_of k save ~off:!shadow_pos in
           shadow_pos := !shadow_pos + Addr.page_size;
           Machine.bcopy (Kernel.machine k) ~src ~dst ~len:Addr.page_size))
  | State_saving.Copy_based | State_saving.Lvm_based
  | State_saving.No_saving -> ());
  (* fault all pages in before measuring, like the paper's tests *)
  for off = 0 to (seg_size / Addr.page_size) - 1 do
    ignore (Kernel.read_word k sp (base + (off * Addr.page_size)))
  done;
  let perf = Kernel.perf k in
  let records_since_recycle = ref 0 in
  let t0 = Kernel.time k in
  for ev = 0 to p.events - 1 do
    let obj = ev mod p.objects in
    let obj_base = base + (obj * p.s) in
    (match strategy with
    | State_saving.Copy_based ->
      (* conventional rollback support: copy the object state first *)
      if !save_pos + p.s > Segment.size save then save_pos := 0;
      let src = Kernel.paddr_of k working ~off:(obj * p.s) in
      let dst = Kernel.paddr_of k save ~off:!save_pos
      in
      save_pos := !save_pos + p.s;
      Machine.bcopy (Kernel.machine k) ~src ~dst ~len:p.s
    | State_saving.Lvm_based ->
      Kernel.write_word k sp lvt_cell ev;
      records_since_recycle := !records_since_recycle + 1 + p.w;
      if !records_since_recycle >= recycle_records then begin
        let ls = Option.get ls in
        Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end:0;
        records_since_recycle := 0
      end
    | State_saving.Page_protect ->
      if ev mod p.checkpoint_interval = 0 then Kernel.protect_region k region
    | State_saving.No_saving -> ());
    Kernel.compute k p.c;
    for i = 0 to p.w - 1 do
      let word = (ev + i) mod (p.s / Addr.word_size) in
      Kernel.write_word k sp (obj_base + (word * Addr.word_size))
        ((ev lxor i) land 0xFFFF)
    done
  done;
  let cycles = Kernel.time k - t0 in
  (* settle the logger pipeline so the perf counters are complete *)
  Logger.complete_pending (Machine.logger (Kernel.machine k));
  {
    cycles;
    per_event = float_of_int cycles /. float_of_int p.events;
    overloads = perf.Perf.overloads;
    log_records = perf.Perf.log_records;
    protect_faults = perf.Perf.write_protect_faults;
  }

let speedup ?hw p =
  let copy = run ?hw p State_saving.Copy_based in
  let lvm = run ?hw p State_saving.Lvm_based in
  float_of_int copy.cycles /. float_of_int lvm.cycles
