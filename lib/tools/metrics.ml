let blob ?label collector =
  Output_stream.Envelope.render ~kind:"metrics"
    [ ( "metrics",
        Output_stream.Envelope.Raw
          (Lvm_obs.Sink.blob_json ?label
             ~histograms:(Lvm_obs.Collector.histograms collector)
             (Lvm_obs.Collector.snapshot collector)) ) ]

let emit ?label ~format ppf collector =
  match format with
  | None -> ()
  | Some Lvm_obs.Sink.Json -> Format.fprintf ppf "%s@." (blob ?label collector)
  | Some fmt ->
    Lvm_obs.Sink.emit ?label
      ~histograms:(Lvm_obs.Collector.histograms collector)
      fmt ppf
      (Lvm_obs.Collector.snapshot collector)

let with_ambient ?label ~format ppf f =
  let result, collector = Lvm_obs.Collector.with_collector f in
  emit ?label ~format ppf collector;
  result

let write_file ?label ~file collector =
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "%s@." (blob ?label collector);
  Format.pp_print_flush ppf ();
  close_out oc
