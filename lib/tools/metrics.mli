(** Shared collector/sink plumbing for the command-line tools.

    [lvmctl], [bench] and the experiment reports all run workloads under
    an ambient {!Lvm_obs.Collector} and then render the merged counters
    and histograms through a {!Lvm_obs.Sink}. This module holds the one
    copy of that wiring; JSON output is wrapped in the versioned
    {!Output_stream.Envelope} (kind ["metrics"]). *)

val blob : ?label:string -> Lvm_obs.Collector.t -> string
(** The collector's merged counters and histograms as one enveloped JSON
    line ([{"schema_version": 1, "kind": "metrics", "metrics": ...}]). *)

val emit :
  ?label:string ->
  format:Lvm_obs.Sink.format option ->
  Format.formatter ->
  Lvm_obs.Collector.t ->
  unit
(** Render the collector in the requested format ([Json] goes through
    {!blob}); [format = None] emits nothing (metrics not requested). *)

val with_ambient :
  ?label:string ->
  format:Lvm_obs.Sink.format option ->
  Format.formatter ->
  (unit -> 'a) ->
  'a
(** Run a workload under an ambient {!Lvm_obs.Collector} and {!emit} its
    metrics afterwards. Every machine the workload creates is captured. *)

val write_file : ?label:string -> file:string -> Lvm_obs.Collector.t -> unit
(** Write {!blob} to [file] (what benchmarks put in [BENCH_*.json]). *)
