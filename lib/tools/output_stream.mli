(** High-performance output through logging (Section 2.6).

    A program sets the segment containing its state to be logged; a
    separate process interprets the log to produce output or a visual
    display, offloading the application entirely. The indexed log mode
    yields a bare stream of data values (streamed device output); the
    direct-mapped mode writes each value at the same offset in the log
    page as in the data page (mapped I/O without read-back support). *)

type t

val create_indexed :
  Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int ->
  log_pages:int -> t
(** A logged output region in indexed mode. *)

val create_direct :
  Lvm_vm.Kernel.t -> Lvm_vm.Address_space.t -> size:int -> t
(** A logged output region in direct-mapped mode (the log segment mirrors
    the data segment page for page). *)

val emit : t -> int -> unit
(** Producer: write the next value into the output region (indexed mode
    streams it; direct-mapped mode updates the mirror at the cursor). *)

val emit_at : t -> off:int -> int -> unit
(** Producer: write a value at a chosen offset (direct-mapped use). *)

val consume : t -> int list
(** Consumer process: values streamed since the last [consume] (indexed
    mode only; the consumed prefix is discarded). *)

val mirror_word : t -> off:int -> int
(** Consumer view of a direct-mapped output device at [off]. *)

(** {1 The tool-output envelope}

    Every JSON document the command-line tools emit ([lvmctl --metrics],
    [logstats --json], [crashsweep --json], [store --json], the
    [BENCH_*.json] blobs) is wrapped in one versioned envelope so
    downstream tooling parses a single shape:

    {v {"schema_version": 1, "kind": "<kind>", ...fields} v} *)
module Envelope : sig
  val schema_version : int
  (** Currently [1]; bumped on any incompatible field change. *)

  (** A minimal JSON tree — no external dependency. [Raw] embeds an
      already-rendered JSON fragment verbatim (e.g. an
      [Lvm_obs.Sink.blob_json] blob). *)
  type json =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** rendered with four decimals *)
    | String of string
    | List of json list
    | Obj of (string * json) list
    | Raw of string

  val render : kind:string -> (string * json) list -> string
  (** One-line JSON object: the envelope header followed by [fields]. *)

  val emit : kind:string -> Format.formatter -> (string * json) list -> unit
  (** [render] followed by a newline on the formatter. *)
end
