open Lvm_machine
open Lvm_vm

type kind = Indexed | Direct

type t = {
  k : Kernel.t;
  space : Address_space.t;
  kind : kind;
  seg : Segment.t;
  ls : Segment.t;
  base : int;
  size : int;
  mutable cursor : int; (* producer position, bytes *)
  mutable consumed : int; (* indexed mode: bytes already consumed *)
}

let create kind ?(log_pages = 16) k space ~size =
  let seg = Kernel.create_segment k ~size in
  let region = Kernel.create_region k seg in
  let mode, log_size =
    match kind with
    | Indexed -> (Logger.Indexed, log_pages * Addr.page_size)
    | Direct -> (Logger.Direct_mapped, Segment.size seg)
  in
  let ls = Kernel.create_log_segment ~mode k ~size:log_size in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k space region in
  { k; space; kind; seg; ls; base; size; cursor = 0; consumed = 0 }

let create_indexed k space ~size ~log_pages =
  create Indexed ~log_pages k space ~size

let create_direct k space ~size = create Direct k space ~size

let emit_at t ~off v =
  if off < 0 || off + 4 > t.size then invalid_arg "Output_stream.emit_at";
  Kernel.write_word t.k t.space (t.base + off) v

let emit t v =
  emit_at t ~off:t.cursor v;
  t.cursor <- (t.cursor + Addr.word_size) mod t.size

let consume t =
  if t.kind <> Indexed then
    invalid_arg "Output_stream.consume: indexed mode only";
  Kernel.sync_log t.k t.ls;
  let available = Segment.write_pos t.ls in
  let values = ref [] in
  let off = ref t.consumed in
  while !off + Addr.word_size <= available do
    let paddr = Kernel.paddr_of t.k t.ls ~off:!off in
    values :=
      Physmem.read_word (Machine.mem (Kernel.machine t.k)) paddr :: !values;
    off := !off + Addr.word_size
  done;
  t.consumed <- !off;
  List.rev !values

let mirror_word t ~off =
  if t.kind <> Direct then
    invalid_arg "Output_stream.mirror_word: direct-mapped mode only";
  Kernel.sync_log t.k t.ls;
  Kernel.seg_read_raw t.k t.ls ~off ~size:4

module Envelope = struct
  let schema_version = 1

  type json =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of json list
    | Obj of (string * json) list
    | Raw of string

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int v -> Buffer.add_string b (string_of_int v)
    | Float v -> Buffer.add_string b (Printf.sprintf "%.4f" v)
    | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          write b v)
        vs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape name);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'
    | Raw s -> Buffer.add_string b s

  let render ~kind fields =
    let b = Buffer.create 256 in
    write b
      (Obj
         (("schema_version", Int schema_version)
          :: ("kind", String kind) :: fields));
    Buffer.contents b

  let emit ~kind ppf fields =
    Format.fprintf ppf "%s@." (render ~kind fields)
end
