open Lvm_vm

type summary = {
  records : int;
  distinct_locations : int;
  redundant : int;
  redundancy_ratio : float;
}

let counts k ~watched ~log =
  let table = Hashtbl.create 64 in
  let records = ref 0 in
  Lvm.Log_reader.iter k log ~f:(fun ~off:_ r ->
      if not r.Lvm_machine.Log_record.pre_image then
        match Lvm.Log_reader.locate k r with
        | Some (seg, off) when Segment.id seg = Segment.id watched ->
          incr records;
          Hashtbl.replace table off
            (1 + Option.value ~default:0 (Hashtbl.find_opt table off))
        | Some _ | None -> ());
  (table, !records)

let summarize k ~watched ~log =
  let table, records = counts k ~watched ~log in
  let distinct_locations = Hashtbl.length table in
  let redundant = records - distinct_locations in
  {
    records;
    distinct_locations;
    redundant;
    redundancy_ratio =
      (if records = 0 then 0. else float_of_int redundant /. float_of_int records);
  }

(* {1 Bandwidth-diet analysis} *)

type diet = {
  version : Lvm_machine.Log_record.version;
  txns : int;
  bytes_per_txn : float;
  absorbed : int;
  flushed : int;
  absorption_ratio : float;
  raw : int;
  run : int;
  delta : int;
  pad : int;
  bytes_logical : int;
  bytes_encoded : int;
  sealed_bytes : int;
  active_bytes : int;
}

let extent_bytes log =
  let s = Lvm_log.stats log in
  let eb = s.Lvm_log.extent_pages * Lvm_machine.Addr.page_size in
  let sealed = ref 0 and active = ref 0 in
  for i = 0 to s.Lvm_log.extents - 1 do
    match Lvm_log.extent_state log i with
    | Lvm_log.Sealed | Lvm_log.Truncatable -> sealed := !sealed + eb
    | Lvm_log.Active ->
      active := !active + max 0 (min eb (s.Lvm_log.write_pos - (i * eb)))
    | Lvm_log.Recycled -> ()
  done;
  (!sealed, !active)

let diet k ~log ~txns =
  let snap = Kernel.snapshot k in
  let get name =
    if Lvm_obs.Snapshot.mem snap name then Lvm_obs.Snapshot.get snap name
    else 0
  in
  let version = Lvm_log.stream_version log in
  let absorbed = get "log.coalesce_absorbed" in
  let flushed = get "log.coalesce_flushed" in
  let bytes_logical = get "log.bytes_logical" in
  let bytes_encoded =
    match version with
    | Lvm_machine.Log_record.V1 -> get "log.bytes_encoded"
    | Lvm_machine.Log_record.V0 ->
      (* V0 writes no diet counters: every emitted record is 16 bytes. *)
      get "log_records" * Lvm_machine.Log_record.bytes
  in
  let sealed_bytes, active_bytes = extent_bytes log in
  {
    version;
    txns;
    bytes_per_txn =
      (if txns = 0 then 0. else float_of_int bytes_encoded /. float_of_int txns);
    absorbed;
    flushed;
    absorption_ratio =
      (let seen = absorbed + flushed in
       if seen = 0 then 0. else float_of_int absorbed /. float_of_int seen);
    raw = get "log.records_raw";
    run = get "log.records_run";
    delta = get "log.records_delta";
    pad = get "log.records_pad";
    bytes_logical;
    bytes_encoded;
    sealed_bytes;
    active_bytes;
  }

let top_rewritten ?(limit = 10) k ~watched ~log =
  let table, _ = counts k ~watched ~log in
  Hashtbl.fold (fun off n acc -> (off, n) :: acc) table []
  |> List.filter (fun (_, n) -> n > 1)
  |> List.sort (fun (o1, a) (o2, b) ->
         match compare b a with 0 -> compare o1 o2 | c -> c)
  |> List.filteri (fun i _ -> i < limit)
