(** Log analysis for performance tuning (Section 2.7).

    LVM performance suffers when applications "repeatedly write the same
    location when only the last write is of interest"; the paper notes
    that "the logs provide the information required to identify and
    eliminate these redundant writes." This module is that analysis:
    quantify redundancy in a log and point at the worst offenders so
    rapidly-changing temporaries can be moved out of logged regions. *)

type summary = {
  records : int;  (** Ordinary write records (pre-images excluded). *)
  distinct_locations : int;
  redundant : int;  (** Writes that were later overwritten, i.e. only the
                        last write per location is of interest. *)
  redundancy_ratio : float;  (** [redundant / records], 0 for empty logs. *)
}

val summarize :
  Lvm_vm.Kernel.t -> watched:Lvm_vm.Segment.t -> log:Lvm_vm.Segment.t ->
  summary
(** Analyze the writes that landed in [watched]. *)

val top_rewritten :
  ?limit:int -> Lvm_vm.Kernel.t -> watched:Lvm_vm.Segment.t ->
  log:Lvm_vm.Segment.t -> (int * int) list
(** The most-overwritten byte offsets as [(offset, write count)],
    descending, at most [limit] (default 10) — candidates for moving into
    an unlogged region (e.g. an {!Lvm.Arena} scratch arena). *)

(** {1 Bandwidth-diet analysis}

    The logging-bandwidth diet (versioned codec + write coalescing) gets
    its own report: how many writes the coalescing buffer absorbed, what
    the encoded stream spent per record kind, and how the encoded bytes
    compare to the 16-byte-per-record baseline. *)

type diet = {
  version : Lvm_machine.Log_record.version;
  txns : int;  (** Caller-supplied epoch count for {!diet.bytes_per_txn}. *)
  bytes_per_txn : float;  (** [bytes_encoded / txns], 0 for [txns = 0]. *)
  absorbed : int;  (** Writes merged away in the coalescing buffer. *)
  flushed : int;  (** Records that left the buffer to the log. *)
  absorption_ratio : float;  (** [absorbed / (absorbed + flushed)]. *)
  raw : int;  (** Raw physical records emitted. *)
  run : int;  (** Run (RLE) physical records emitted. *)
  delta : int;  (** Delta physical records emitted. *)
  pad : int;  (** Page-boundary pads emitted. *)
  bytes_logical : int;  (** 16 B per logical record — the V0 baseline. *)
  bytes_encoded : int;  (** Stream bytes actually written, pads included. *)
  sealed_bytes : int;  (** Bytes in sealed/truncatable extents. *)
  active_bytes : int;  (** Bytes written into the active extent. *)
}

val extent_bytes : Lvm_log.t -> int * int
(** [(sealed, active)] record bytes of the log's extent ring, labeled by
    extent state: sealed covers [Sealed] and [Truncatable] extents,
    active the written span of the [Active] extent. *)

val diet : Lvm_vm.Kernel.t -> log:Lvm_log.t -> txns:int -> diet
(** Read the kernel's diet counters ([log.coalesce_*], [log.records_*],
    [log.bytes_*]) and the ring's sealed/active split. Under [V0] the
    codec counters do not exist; encoded bytes fall back to
    [16 * log_records] (every record is raw). *)
