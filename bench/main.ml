(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on the simulated machine, then runs Bechamel
   micro-benchmarks of the simulator primitives behind each experiment
   (host wall-clock, one Test.make per table/figure).

   Usage: main.exe [--quick] [--no-bechamel] [--only ID] [--list]
                   [--metrics FILE] [--cpus N]
                   [--store] [--store-json FILE]
                   [--fams] [--fams-json FILE]
                   [--repl] [--repl-json FILE]
                   [--hotshard] [--hotshard-json FILE]
                   [--logdiet] [--logdiet-json FILE]
                   [--mvcc] [--mvcc-json FILE] *)

open Lvm_machine
open Lvm_vm

(* {1 Bechamel micro-benchmarks}

   Fixtures are prebuilt and each staged closure is safe to run millions
   of times (offsets wrap, logs are recycled). *)

let bench_table2 () =
  let k = Kernel.create ~frames:256 () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:8192 in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(16 * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  let i = ref 0 in
  Bechamel.Test.make ~name:"table2/logged-write"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         Kernel.write_word k sp (base + (!i * 4 mod 4096)) !i;
         if !i mod 200 = 0 then begin
           Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end:0
         end))

let bench_table3 () =
  let k = Kernel.create ~frames:512 () in
  let sp = Kernel.create_space k in
  let rvm = Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size:8192 in
  let rlvm = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size:8192 in
  let i = ref 0 in
  let rvm_test =
    Bechamel.Test.make ~name:"table3/rvm-txn"
      (Bechamel.Staged.stage (fun () ->
           incr i;
           let off = !i * 8 mod 4096 in
           Lvm_rvm.Rvm.begin_txn rvm;
           Lvm_rvm.Rvm.set_range rvm ~off ~len:4;
           Lvm_rvm.Rvm.write_word rvm ~off !i;
           Lvm_rvm.Rvm.commit rvm))
  in
  let j = ref 0 in
  let rlvm_test =
    Bechamel.Test.make ~name:"table3/rlvm-txn"
      (Bechamel.Staged.stage (fun () ->
           incr j;
           let off = !j * 8 mod 4096 in
           Lvm_rvm.Rlvm.begin_txn rlvm;
           Lvm_rvm.Rlvm.write_word rlvm ~off !j;
           Lvm_rvm.Rlvm.commit rlvm))
  in
  [ rvm_test; rlvm_test ]

(* Same transaction stream as table3/rlvm-txn, but the WAL is forced once
   per four commits: measures what group commit shaves off the loop. *)
let bench_group4 () =
  let k = Kernel.create ~frames:512 () in
  let sp = Kernel.create_space k in
  let rlvm = Lvm_rvm.Rlvm.make { Lvm_rvm.Rlvm.Config.default with group = 4 } k sp ~size:8192 in
  let i = ref 0 in
  Bechamel.Test.make ~name:"table3/rlvm-txn-group4"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         let off = !i * 8 mod 4096 in
         Lvm_rvm.Rlvm.begin_txn rlvm;
         Lvm_rvm.Rlvm.write_word rlvm ~off !i;
         Lvm_rvm.Rlvm.commit rlvm))

(* Plain writes + snapshot through the failure-atomic snapshot API: the
   per-batch cost the fams_comparison measures in simulated cycles, here
   as host ns/op. Snapshots recycle the log and truncate the WAL, so the
   closure is safe to run indefinitely. *)
let bench_fams () =
  let k = Kernel.create ~frames:512 () in
  let sp = Kernel.create_space k in
  let f =
    match Lvm_fams.map Lvm_fams.Config.default k sp ~size:8192 with
    | Ok f -> f
    | Error e -> failwith (Lvm.Lvm_error.to_string e)
  in
  let i = ref 0 in
  Bechamel.Test.make ~name:"fams/8-writes+snapshot"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         for w = 0 to 7 do
           match Lvm_fams.write_word f ~off:(((!i * 8) + w) * 8 mod 4096) !i
           with
           | Ok () -> ()
           | Error e -> failwith (Lvm.Lvm_error.to_string e)
         done;
         match Lvm_fams.snapshot f with
         | Ok _ -> ()
         | Error e -> failwith (Lvm.Lvm_error.to_string e)))

(* [Log_reader.fold] over a prebuilt log: the fold syncs the logger once
   per call and caches one frame translation per page, so this scales
   with record count, not with per-record kernel crossings. *)
let bench_logreader_fold () =
  let k = Kernel.create ~frames:256 () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:4096 in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(8 * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  for i = 0 to 1023 do
    Kernel.write_word k sp (base + (i * 4 mod 4096)) i
  done;
  Kernel.sync_log k ls;
  Bechamel.Test.make ~name:"logreader/fold-1024-records"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Lvm.Log_reader.fold k ls ~init:0 ~f:(fun acc ~off:_ _ -> acc + 1))))

let bench_fig7 () =
  Bechamel.Test.make ~name:"fig7-8/synthetic-200-events"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Lvm_sim.Synthetic.run
              { Lvm_sim.Synthetic.default_params with
                Lvm_sim.Synthetic.events = 200 }
              Lvm_sim.State_saving.Lvm_based)))

let bench_fig9 () =
  let k = Kernel.create ~frames:512 () in
  let sp = Kernel.create_space k in
  let working = Kernel.create_segment k ~size:(32 * 1024) in
  let ckpt = Kernel.create_segment k ~size:(32 * 1024) in
  Kernel.declare_source k ~dst:working ~src:ckpt ~offset:0;
  let region = Kernel.create_region k working in
  let base = Kernel.bind k sp region in
  Bechamel.Test.make ~name:"fig9/reset-deferred-copy-32k"
    (Bechamel.Staged.stage (fun () ->
         Kernel.write_word k sp base 1;
         Kernel.reset_deferred_copy k sp ~start:base ~len:(32 * 1024)))

let bench_fig10 () =
  Bechamel.Test.make ~name:"fig10-12/writes-loop-500-iters"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Lvm_experiments.Writes_loop.run ~iterations:500 ~c:60 ~unlogged:0
              ~logged:1 ())))

let bench_multicpu ~cpus () =
  Bechamel.Test.make
    ~name:(Printf.sprintf "multicpu/writes-loop-%dcpu-200-iters" cpus)
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Lvm_experiments.Writes_loop.run ~cpus ~iterations:200 ~c:60
              ~unlogged:0 ~logged:1 ())))

let bench_consistency () =
  let k = Kernel.create ~frames:512 () in
  let sp = Kernel.create_space k in
  let t =
    Lvm_consistency.Shared_segment.create k sp ~size:8192
      Lvm_consistency.Shared_segment.Log_based
  in
  let i = ref 0 in
  Bechamel.Test.make ~name:"consistency/log-based-release"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         Lvm_consistency.Shared_segment.acquire t;
         Lvm_consistency.Shared_segment.write_word t ~off:(!i * 4 mod 8192)
           !i;
         ignore (Lvm_consistency.Shared_segment.release t)))

let bechamel_tests ~cpus () =
  Bechamel.Test.make_grouped ~name:"lvm"
    ([ bench_table2 () ] @ bench_table3 ()
    @ [ bench_group4 (); bench_fams (); bench_logreader_fold ();
        bench_fig7 (); bench_fig9 (); bench_fig10 ();
        bench_multicpu ~cpus (); bench_consistency () ])

let run_bechamel ~cpus () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ~cpus ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Format.printf "@.%s@.= Bechamel micro-benchmarks (host ns/op) =@.%s@."
    (String.make 46 '=') (String.make 46 '=');
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.0f ns/op" e
        | Some _ | None -> "n/a"
      in
      rows := [ name; estimate ] :: !rows)
    results;
  Lvm_experiments.Report.table Format.std_formatter
    ~header:[ "benchmark"; "estimate" ]
    (List.sort compare !rows)

(* {1 Group commit on vs off (simulated cycles)}

   The identical transaction stream with the WAL forced on every commit
   (group 1, the paper's RVM behavior) and once per four commits (group
   4): the per-commit force cost amortizes across the batch. Run inside
   the ambient collector, so both runs' counters — notably
   [rvm.wal_forces] — land in the metrics blob. *)

let group_commit_comparison ppf =
  let point ~group =
    let k = Kernel.create ~frames:256 () in
    let sp = Kernel.create_space k in
    let r = Lvm_rvm.Rlvm.make { Lvm_rvm.Rlvm.Config.default with group } k sp ~size:8192 in
    let txns = 64 in
    let t0 = Kernel.time k in
    for i = 1 to txns do
      Lvm_rvm.Rlvm.begin_txn r;
      Lvm_rvm.Rlvm.write_word r ~off:(i * 8 mod 4096) i;
      Lvm_rvm.Rlvm.commit r
    done;
    Lvm_rvm.Rlvm.flush_commits r;
    let cycles = Kernel.time k - t0 in
    let forces =
      Lvm_obs.Snapshot.get (Machine.snapshot (Kernel.machine k))
        "rvm.wal_forces"
    in
    (cycles / txns, forces)
  in
  let c1, f1 = point ~group:1 in
  let c4, f4 = point ~group:4 in
  Format.fprintf ppf
    "group commit (64 txns): group=1 %d cycles/txn, %d WAL forces; \
     group=4 %d cycles/txn, %d WAL forces@."
    c1 f1 c4 f4

(* {1 Sharded-store scaling (simulated cycles)}

   The same seeded transaction mix through [Lvm_store] at one shard and
   at four: the figure shards are supposed to buy is cycles-per-
   transaction wall-clock throughput, cross-shard two-phase commits and
   all. [--store-json FILE] records both points and the speedup (the
   BENCH_5.json blob). *)

let store_point ~shards ~txns =
  let st =
    Lvm_store.Store.create { Lvm_store.Store.Config.default with shards }
  in
  Lvm_store.Workload.run st { Lvm_store.Workload.default with txns }

let store_scaling_comparison ?json_file ppf =
  let txns = 200 in
  let r1 = store_point ~shards:1 ~txns in
  let r4 = store_point ~shards:4 ~txns in
  let speedup =
    r1.Lvm_store.Workload.cycles_per_txn
    /. r4.Lvm_store.Workload.cycles_per_txn
  in
  Format.fprintf ppf
    "store scaling (%d txns): 1 shard %.1f cycles/txn; 4 shards %.1f \
     cycles/txn (%d cross-shard, %d shed); speedup %.2fx@."
    txns r1.Lvm_store.Workload.cycles_per_txn
    r4.Lvm_store.Workload.cycles_per_txn r4.Lvm_store.Workload.cross
    r4.Lvm_store.Workload.shed speedup;
  match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let point shards (r : Lvm_store.Workload.result) =
      Obj
        [ ("shards", Int shards); ("executed", Int r.executed);
          ("cross", Int r.cross); ("shed", Int r.shed);
          ("requeued", Int r.requeued); ("wall_cycles", Int r.wall_cycles);
          ("cycles_per_txn", Float r.cycles_per_txn) ]
    in
    let line =
      render ~kind:"store_scaling"
        [ ("txns", Int txns); ("single", point 1 r1); ("sharded", point 4 r4);
          ("speedup", Float speedup) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "store scaling written to %s\n%!" file

(* {1 FAMS vs RVM vs RLVM (simulated cycles)}

   The headline comparison for the failure-atomic snapshot API: the same
   durable-batch workload — [batches] batches of [writes] word stores to
   the same deterministic offsets over an 8 KiB region, each batch made
   durable — through the three programming models:

   - RVM: begin / per-write [set_range] annotation + write / commit;
   - RLVM: begin / plain writes / commit (hardware log builds the redo);
   - FAMS: plain writes / [snapshot] (no bracketing at all).

   [--fams-json FILE] records all three points and the ratios (the
   BENCH_6.json blob). *)

let fams_comparison ?json_file ppf =
  let batches = 64 and writes = 8 and size = 8192 in
  let off b w = ((b * writes) + w) * 8 mod (size / 2) in
  let measure point =
    let k = Kernel.create ~frames:256 () in
    let sp = Kernel.create_space k in
    let run = point k sp in
    let t0 = Kernel.time k in
    for b = 0 to batches - 1 do
      run b
    done;
    Kernel.time k - t0
  in
  let fams_unwrap what = function
    | Ok v -> v
    | Error e -> failwith (what ^ ": " ^ Lvm.Lvm_error.to_string e)
  in
  let rvm_cycles =
    measure (fun k sp ->
        let r = Lvm_rvm.Rvm.make Lvm_rvm.Rvm.Config.default k sp ~size in
        fun b ->
          Lvm_rvm.Rvm.begin_txn r;
          for w = 0 to writes - 1 do
            Lvm_rvm.Rvm.set_range r ~off:(off b w) ~len:4;
            Lvm_rvm.Rvm.write_word r ~off:(off b w) ((b * 97) + w)
          done;
          Lvm_rvm.Rvm.commit r)
  in
  let rlvm_cycles =
    measure (fun k sp ->
        let r = Lvm_rvm.Rlvm.make Lvm_rvm.Rlvm.Config.default k sp ~size in
        fun b ->
          Lvm_rvm.Rlvm.begin_txn r;
          for w = 0 to writes - 1 do
            Lvm_rvm.Rlvm.write_word r ~off:(off b w) ((b * 97) + w)
          done;
          Lvm_rvm.Rlvm.commit r)
  in
  let fams_spans = ref 0 and fams_bytes = ref 0 in
  let fams_cycles =
    measure (fun k sp ->
        let f =
          fams_unwrap "map" (Lvm_fams.map Lvm_fams.Config.default k sp ~size)
        in
        fun b ->
          for w = 0 to writes - 1 do
            fams_unwrap "write"
              (Lvm_fams.write_word f ~off:(off b w) ((b * 97) + w))
          done;
          let rep = fams_unwrap "snapshot" (Lvm_fams.snapshot f) in
          fams_spans := !fams_spans + rep.Lvm_fams.spans;
          fams_bytes := !fams_bytes + rep.Lvm_fams.bytes)
  in
  let per c = float_of_int c /. float_of_int batches in
  Format.fprintf ppf
    "fams (%d batches x %d writes): rvm %.0f cycles/batch; rlvm %.0f \
     cycles/batch; fams %.0f cycles/batch (%.2fx vs rvm, %.2fx vs rlvm)@."
    batches writes (per rvm_cycles) (per rlvm_cycles) (per fams_cycles)
    (per rvm_cycles /. per fams_cycles)
    (per rlvm_cycles /. per fams_cycles);
  match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let point cycles extra =
      Obj
        ([ ("wall_cycles", Int cycles);
           ("cycles_per_batch", Float (per cycles)) ]
        @ extra)
    in
    let line =
      render ~kind:"fams_comparison"
        [ ("batches", Int batches); ("writes", Int writes);
          ("size", Int size); ("rvm", point rvm_cycles []);
          ("rlvm", point rlvm_cycles []);
          ("fams",
           point fams_cycles
             [ ("spans", Int !fams_spans); ("bytes", Int !fams_bytes) ]);
          ("speedup_vs_rvm", Float (per rvm_cycles /. per fams_cycles));
          ("speedup_vs_rlvm", Float (per rlvm_cycles /. per fams_cycles)) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "fams comparison written to %s\n%!" file

(* {1 Replication failover and catch-up (simulated ticks)}

   Two scenario measurements over an [Lvm_repl] cluster on a clean
   transport:

   - failover: replicate half the workload, fail-stop the primary with
     frames still in flight, promote the furthest-ahead standby and
     finish the workload on it — reporting the kill-to-serving latency
     and the ticks for the survivors to reconverge;
   - catch-up: fully partition one standby, commit the second half of
     the workload without it, heal, and report the bytes it was behind
     over the ticks it took to drain them.

   [--repl-json FILE] records both (the BENCH_7.json blob). *)

let repl_comparison ?json_file ppf =
  let module Repl = Lvm_repl in
  let txns = 64 and replicas = 2 in
  let commit ?(gap = 3) cl j =
    let keys = Repl.keys cl in
    (match
       Repl.exec cl
         ~writes:[ (j mod keys, (j * 100) + 1);
                   (((j * 5) + 2) mod keys, (j * 100) + 2) ]
     with
    | Ok () -> ()
    | Error e -> failwith (Lvm.Lvm_error.to_string e));
    Repl.step ~ticks:gap cl
  in
  (* failover: kill mid-stream, promote, finish on the new primary *)
  let cl = Repl.create { Repl.Config.default with replicas } in
  for j = 0 to (txns / 2) - 1 do
    commit cl j
  done;
  Repl.kill_primary cl;
  Repl.step ~ticks:4 cl;
  let promo = Repl.promote cl in
  let t0 = Repl.now cl in
  for j = txns / 2 to txns - 1 do
    commit cl j
  done;
  if not (Repl.sync cl) then failwith "repl bench: failover did not converge";
  let reconverge_ticks = Repl.now cl - t0 in
  (* catch-up: partition standby 0, commit without it, heal, drain *)
  let drop_everything =
    Lvm_fault.Plan.create
      [ { Lvm_fault.Plan.site = Lvm_fault.Fault.Net_frame;
          trigger = Lvm_fault.Plan.Every 1; fault = Lvm_fault.Fault.Net_drop };
        { Lvm_fault.Plan.site = Lvm_fault.Fault.Net_ack;
          trigger = Lvm_fault.Plan.Every 1; fault = Lvm_fault.Fault.Net_drop }
      ]
  in
  let cl2 = Repl.create { Repl.Config.default with replicas } in
  for j = 0 to (txns / 2) - 1 do
    commit cl2 j
  done;
  if not (Repl.sync cl2) then failwith "repl bench: baseline did not converge";
  Repl.set_net_plan cl2 (Some drop_everything);
  for j = txns / 2 to txns - 1 do
    commit ~gap:1 cl2 j
  done;
  let behind = Repl.stream_end cl2 - Repl.replica_applied cl2 0 in
  Repl.set_net_plan cl2 None;
  let t1 = Repl.now cl2 in
  if not (Repl.sync cl2) then failwith "repl bench: catch-up did not converge";
  let catchup_ticks = max 1 (Repl.now cl2 - t1) in
  let throughput = float_of_int behind /. float_of_int catchup_ticks in
  Format.fprintf ppf
    "repl (%d txns, %d replicas): failover %d ticks (r%d serving at epoch \
     %d), reconverge %d ticks; catch-up %d bytes in %d ticks (%.1f \
     bytes/tick)@."
    txns replicas promo.Repl.failover_ticks promo.Repl.new_primary
    promo.Repl.new_epoch reconverge_ticks behind catchup_ticks throughput;
  match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let line =
      render ~kind:"repl"
        [ ("txns", Int txns); ("replicas", Int replicas);
          ("failover",
           Obj
             [ ("new_primary", Int promo.Repl.new_primary);
               ("new_epoch", Int promo.Repl.new_epoch);
               ("applied_bytes", Int promo.Repl.applied_bytes);
               ("folded_bytes", Int promo.Repl.folded_bytes);
               ("failover_ticks", Int promo.Repl.failover_ticks);
               ("reconverge_ticks", Int reconverge_ticks) ]);
          ("catchup",
           Obj
             [ ("behind_bytes", Int behind);
               ("ticks", Int catchup_ticks);
               ("bytes_per_tick", Float throughput) ]) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "repl failover/catch-up written to %s\n%!" file

(* {1 Hot-shard survival (simulated cycles)}

   The same seeded single-shard transaction count at 1/2/4/8 shards
   under three key distributions: uniform, Zipfian(1.2) with the hot
   ranks clustered on shard 0, and the same Zipfian mix with the
   dynamic splitter enabled. Skew serializes the run on the hot shard;
   the splitter's job is to buy the lost throughput back by fanning the
   hot buckets out mid-run. The headline figure is the 4-shard recovery
   ratio — Zipfian-with-split cycles/txn against uniform — which the
   issue pins at >= 0.70. [--hotshard-json FILE] records the whole
   matrix plus that ratio (the BENCH_8.json blob). *)

let hotshard_point ~shards ~txns ~dist ~split =
  let st =
    Lvm_store.Store.create { Lvm_store.Store.Config.default with shards }
  in
  (* Single-write transactions: the classic hot-key mix. A multi-write
     Zipfian transaction is nearly always cross-shard (independent
     draws land on different shards), and no routing change can buy
     back 2PC — splitting addresses queue imbalance, so that is what
     the matrix isolates. *)
  Lvm_store.Workload.run st
    { Lvm_store.Workload.default with
      txns; cross_pct = 0; writes_per_txn = 1; dist; split }

let hotshard_comparison ?json_file ppf =
  let txns = 1200 and theta = 1.1 in
  (* Eager advisor: at one write per transaction a [check_every] round
     must clear the [min_delta] write gate, the default 1.6x imbalance
     trigger would stop after one move (still ~1.4x above average),
     and the default merge threshold would send the hot buckets home
     again mid-run — so split down to 1.2x and never merge. *)
  let split_spec =
    { Lvm_store.Workload.check_every = 40; batch = 32; max_moves = 8;
      advisor =
        { Lvm_store.Splitter.Config.default with
          min_delta = 24; imbalance = 1.2; merge_below = 0.0 } }
  in
  let rows =
    List.map
      (fun shards ->
        let uniform =
          hotshard_point ~shards ~txns ~dist:Lvm_store.Workload.Uniform
            ~split:None
        in
        let zipf =
          hotshard_point ~shards ~txns
            ~dist:(Lvm_store.Workload.Zipfian { theta }) ~split:None
        in
        let zipf_split =
          hotshard_point ~shards ~txns
            ~dist:(Lvm_store.Workload.Zipfian { theta })
            ~split:(Some split_spec)
        in
        (shards, uniform, zipf, zipf_split))
      [ 1; 2; 4; 8 ]
  in
  let recovery (u : Lvm_store.Workload.result)
      (zs : Lvm_store.Workload.result) =
    u.cycles_per_txn /. zs.cycles_per_txn
  in
  List.iter
    (fun (shards, u, z, zs) ->
      Format.fprintf ppf
        "hotshard (%d txns, %d shard%s): uniform %.1f c/txn; zipf(%.1f) \
         %.1f c/txn; zipf+split %.1f c/txn (%d split%s, %d merge%s, %d \
         moved) — recovery %.2f@."
        txns shards
        (if shards = 1 then "" else "s")
        u.Lvm_store.Workload.cycles_per_txn theta
        z.Lvm_store.Workload.cycles_per_txn
        zs.Lvm_store.Workload.cycles_per_txn zs.Lvm_store.Workload.splits
        (if zs.Lvm_store.Workload.splits = 1 then "" else "s")
        zs.Lvm_store.Workload.merges
        (if zs.Lvm_store.Workload.merges = 1 then "" else "s")
        zs.Lvm_store.Workload.moved (recovery u zs))
    rows;
  let _, u4, _, zs4 =
    List.find (fun (shards, _, _, _) -> shards = 4) rows
  in
  let recovery4 = recovery u4 zs4 in
  Format.fprintf ppf "hotshard 4-shard recovery: %.2f (target >= 0.70)@."
    recovery4;
  match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let point (r : Lvm_store.Workload.result) =
      Obj
        [ ("executed", Int r.executed); ("shed", Int r.shed);
          ("failed", Int r.failed); ("moved", Int r.moved);
          ("splits", Int r.splits); ("merges", Int r.merges);
          ("wall_cycles", Int r.wall_cycles);
          ("cycles_per_txn", Float r.cycles_per_txn) ]
    in
    let line =
      render ~kind:"hotshard"
        [ ("txns", Int txns); ("theta", Float theta);
          ("rows",
           List
             (List.map
                (fun (shards, u, z, zs) ->
                  Obj
                    [ ("shards", Int shards); ("uniform", point u);
                      ("zipf", point z); ("zipf_split", point zs);
                      ("recovery", Float (recovery u zs)) ])
                rows));
          ("recovery_at_4", Float recovery4) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "hotshard matrix written to %s\n%!" file

(* {1 Logging-bandwidth diet (codec x coalescing matrix)}

   The BENCH_4-style saturation loop and a BENCH_5-style transaction
   workload through the four corners of the diet matrix — coalescing
   off/on x Raw16 (V0) / run+delta (V1). The overload leg drives tight
   logged bursts with hot rewrites straight at the FIFOs; the WAL leg
   runs RLVM transactions with truncation gated off and measures WAL
   bytes per transaction plus a full recovery replay. The headline
   checks ride the run: v1+coalescing must overload less than both the
   v0 baseline and the seed's 261, cut WAL bytes/txn by >= 30%, and
   every corner must recover byte-identical images.
   [--logdiet-json FILE] records the matrix (the BENCH_9.json blob). *)

type logdiet_overload = {
  ld_overloads : int;
  ld_cycles : int;
  ld_stream_bytes : int;  (** encoded bytes emitted over the whole run *)
}

type logdiet_wal = {
  ld_wal_bytes : int;
  ld_bytes_per_txn : float;
  ld_replayed : int;
  ld_recovery_ms : float;
  ld_image : Bytes.t;
}

let logdiet_config_name ~codec ~coalesce_depth =
  Printf.sprintf "%s%s"
    (Lvm_machine.Log_record.version_to_string codec)
    (if coalesce_depth > 0 then Printf.sprintf "+co%d" coalesce_depth else "")

let logdiet_overload_point ~codec ~coalesce_depth =
  let seg_bytes = 64 * 1024 in
  let log_pages = 64 in
  let k = Kernel.create ~frames:256 ~codec ~coalesce_depth () in
  let sp = Kernel.create_space k in
  let seg = Kernel.create_segment k ~size:seg_bytes in
  let region = Kernel.create_region k seg in
  let ls = Kernel.create_log_segment k ~size:(log_pages * Addr.page_size) in
  Kernel.set_region_log k region (Some ls);
  let base = Kernel.bind k sp region in
  for p = 0 to (seg_bytes / Addr.page_size) - 1 do
    ignore (Kernel.read_word k sp (base + (p * Addr.page_size)))
  done;
  Logger.flush (Machine.logger (Kernel.machine k));
  let perf = Kernel.perf k in
  Perf.reset perf;
  let pos = ref 0 in
  let recycle_at = (log_pages - 8) * Addr.page_size in
  let t0 = Kernel.time k in
  for i = 0 to 1999 do
    Kernel.compute k 20;
    (* a sequential burst (run-shaped) ... *)
    for w = 0 to 15 do
      Kernel.write_word k sp (base + !pos) (i + w);
      pos := (!pos + Addr.word_size) mod seg_bytes
    done;
    (* ... plus hot rewrites where only the last value matters *)
    for v = 0 to 7 do
      Kernel.write_word k sp base (i + v)
    done;
    (* each iteration ends at a commit boundary: hard sync drains the
       coalescing buffer, exactly what a transaction commit does *)
    Kernel.sync_log k ls;
    if Segment.write_pos ls >= recycle_at then
      Lvm_log.truncate_suffix (Lvm_log.of_segment k ls) ~new_end:0
  done;
  let cycles = Kernel.time k - t0 in
  Logger.complete_pending (Machine.logger (Kernel.machine k));
  let stream_bytes =
    match codec with
    | Log_record.V1 ->
      let snap = Kernel.snapshot k in
      if Lvm_obs.Snapshot.mem snap "log.bytes_encoded" then
        Lvm_obs.Snapshot.get snap "log.bytes_encoded"
      else 0
    | Log_record.V0 -> perf.Perf.log_records * Log_record.bytes
  in
  { ld_overloads = perf.Perf.overloads; ld_cycles = cycles;
    ld_stream_bytes = stream_bytes }

let logdiet_wal_point ~codec ~coalesce_depth =
  let k = Kernel.create ~codec ~coalesce_depth () in
  let sp = Kernel.create_space k in
  let r =
    Lvm_rvm.Rlvm.make
      { Lvm_rvm.Rlvm.Config.default with log_pages = 64 }
      k sp ~size:4096
  in
  let disk = Lvm_rvm.Rlvm.disk r in
  (* let the WAL accumulate the whole run so recovery replays it all *)
  Lvm_rvm.Ramdisk.set_truncate_gate disk (Some (fun () -> false));
  let txns = 64 in
  for t = 1 to txns do
    Lvm_rvm.Rlvm.begin_txn r;
    for w = 0 to 15 do
      Lvm_rvm.Rlvm.write_word r ~off:(4 * (((t * 16) + w) mod 1024)) (t + w)
    done;
    for v = 1 to 8 do
      Lvm_rvm.Rlvm.write_word r ~off:0 ((t * 100) + v)
    done;
    Lvm_rvm.Rlvm.commit r
  done;
  let wal_bytes = Lvm_rvm.Ramdisk.wal_bytes disk in
  let t0 = Sys.time () in
  let image, rep = Lvm_rvm.Ramdisk.recover disk in
  let recovery_ms = (Sys.time () -. t0) *. 1000. in
  { ld_wal_bytes = wal_bytes;
    ld_bytes_per_txn = float_of_int wal_bytes /. float_of_int txns;
    ld_replayed = rep.Lvm_rvm.Ramdisk.replayed;
    ld_recovery_ms = recovery_ms; ld_image = image }

let logdiet_comparison ?json_file ppf =
  let matrix =
    [ (Lvm_machine.Log_record.V0, 0); (Lvm_machine.Log_record.V0, 64);
      (Lvm_machine.Log_record.V1, 0); (Lvm_machine.Log_record.V1, 64) ]
  in
  let rows =
    List.map
      (fun (codec, coalesce_depth) ->
        let o = logdiet_overload_point ~codec ~coalesce_depth in
        let w = logdiet_wal_point ~codec ~coalesce_depth in
        ((codec, coalesce_depth), o, w))
      matrix
  in
  List.iter
    (fun ((codec, depth), o, w) ->
      Format.fprintf ppf
        "logdiet %-8s: %4d overloads, %7d stream B; WAL %.1f B/txn, \
         recovery replayed %d in %.1f ms@."
        (logdiet_config_name ~codec ~coalesce_depth:depth)
        o.ld_overloads o.ld_stream_bytes w.ld_bytes_per_txn w.ld_replayed
        w.ld_recovery_ms)
    rows;
  let find c d =
    let _, o, w = List.find (fun ((c', d'), _, _) -> c' = c && d' = d) rows in
    (o, w)
  in
  let o_v0, w_v0 = find Lvm_machine.Log_record.V0 0 in
  let o_v1c, w_v1c = find Lvm_machine.Log_record.V1 64 in
  let reduction = 1. -. (w_v1c.ld_bytes_per_txn /. w_v0.ld_bytes_per_txn) in
  Format.fprintf ppf
    "logdiet headline: overloads %d -> %d (seed 261); WAL bytes/txn %.1f \
     -> %.1f (%.0f%% saved, target >= 30%%)@."
    o_v0.ld_overloads o_v1c.ld_overloads w_v0.ld_bytes_per_txn
    w_v1c.ld_bytes_per_txn (100. *. reduction);
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if o_v1c.ld_overloads >= min 261 o_v0.ld_overloads then
    fail "v1+coalesce overloads %d, need < min(261, v0 %d)"
      o_v1c.ld_overloads o_v0.ld_overloads;
  if reduction < 0.30 then
    fail "WAL bytes/txn reduction %.2f, need >= 0.30" reduction;
  List.iter
    (fun ((codec, depth), _, w) ->
      if not (Bytes.equal w.ld_image w_v0.ld_image) then
        fail "%s recovered image differs from the v0 baseline"
          (logdiet_config_name ~codec ~coalesce_depth:depth))
    rows;
  List.iter (fun f -> Format.fprintf ppf "FAIL: %s@." f) !failures;
  Format.pp_print_flush ppf ();
  (match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let line =
      render ~kind:"logdiet"
        [ ("seed_overloads", Int 261);
          ("rows",
           List
             (List.map
                (fun ((codec, depth), o, w) ->
                  Obj
                    [ ("config",
                       String (logdiet_config_name ~codec ~coalesce_depth:depth));
                      ("codec",
                       String (Lvm_machine.Log_record.version_to_string codec));
                      ("coalesce_depth", Int depth);
                      ("overloads", Int o.ld_overloads);
                      ("overload_cycles", Int o.ld_cycles);
                      ("stream_bytes", Int o.ld_stream_bytes);
                      ("wal_bytes", Int w.ld_wal_bytes);
                      ("wal_bytes_per_txn", Float w.ld_bytes_per_txn);
                      ("recovery_replayed", Int w.ld_replayed);
                      ("recovery_ms", Float w.ld_recovery_ms) ])
                rows));
          ("wal_reduction", Float reduction);
          ("overloads_v0", Int o_v0.ld_overloads);
          ("overloads_v1_coalesce", Int o_v1c.ld_overloads) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "logdiet matrix written to %s\n%!" file);
  if !failures <> [] then exit 1

(* {1 MVCC snapshot reads (worker vs snapshot read matrix)}

   A 95/5 read-heavy Zipfian(1.1) mix at 1 and 4 shards, the reads
   served two ways: by the shard workers (each read is scheduled like a
   transaction and its per-request compute lands on the owning shard's
   CPU — under skew the hot shard serializes them behind the writes)
   and from log-derived MVCC snapshots on virtual reader tasks
   (wait-free version-chain lookups on the readers' own clocks, no
   shard CPU touched). A reader-scaling leg re-runs the snapshot point
   at 4 shards with 1/2/4 readers. Headline checks ride the run:
   snapshot-read throughput at 4 shards must be >= 2x the worker-read
   point, and adding readers must not lose throughput.
   [--mvcc-json FILE] records the matrix (the BENCH_10.json blob). *)

let mvcc_point ~shards ~txns ~mode ~readers =
  let st =
    Lvm_store.Store.create
      { Lvm_store.Store.Config.default with shards; group = 16 }
  in
  (* Single-write transactions (as in the hotshard matrix): a
     multi-write Zipfian transaction is nearly always cross-shard and
     2PC would dominate both modes' wall clock, drowning the read-path
     difference the matrix isolates. *)
  Lvm_store.Workload.run st
    { Lvm_store.Workload.default with
      txns; cross_pct = 0; writes_per_txn = 1;
      dist = Lvm_store.Workload.Zipfian { theta = 1.1 };
      read_pct = 95; read_mode = mode; readers }

(* Committed writes plus served reads per kilocycle of wall clock. *)
let mvcc_throughput (r : Lvm_store.Workload.result) =
  1000.
  *. float_of_int (r.Lvm_store.Workload.executed + r.Lvm_store.Workload.reads)
  /. float_of_int (max 1 r.Lvm_store.Workload.wall_cycles)

let mvcc_comparison ?json_file ppf =
  let txns = 2000 and readers = 4 in
  let rows =
    List.map
      (fun shards ->
        let worker =
          mvcc_point ~shards ~txns ~mode:Lvm_store.Workload.Worker ~readers:1
        in
        let snapshot =
          mvcc_point ~shards ~txns ~mode:Lvm_store.Workload.Snapshot ~readers
        in
        (shards, worker, snapshot))
      [ 1; 4 ]
  in
  List.iter
    (fun (shards, w, s) ->
      Format.fprintf ppf
        "mvcc (%d ops, %d shard%s): worker %d reads %.2f ops/kcycle; \
         snapshot (%d readers) %d reads %.2f ops/kcycle — %.2fx@."
        txns shards
        (if shards = 1 then "" else "s")
        w.Lvm_store.Workload.reads (mvcc_throughput w) readers
        s.Lvm_store.Workload.reads (mvcc_throughput s)
        (mvcc_throughput s /. mvcc_throughput w))
    rows;
  let scaling =
    List.map
      (fun readers ->
        ( readers,
          mvcc_point ~shards:4 ~txns ~mode:Lvm_store.Workload.Snapshot
            ~readers ))
      [ 1; 2; 4 ]
  in
  List.iter
    (fun (readers, r) ->
      Format.fprintf ppf
        "mvcc reader scaling (4 shards): %d reader%s %.2f ops/kcycle@."
        readers
        (if readers = 1 then "" else "s")
        (mvcc_throughput r))
    scaling;
  let _, w4, s4 = List.find (fun (shards, _, _) -> shards = 4) rows in
  let speedup4 = mvcc_throughput s4 /. mvcc_throughput w4 in
  Format.fprintf ppf "mvcc 4-shard snapshot speedup: %.2fx (target >= 2x)@."
    speedup4;
  if speedup4 < 2.0 then
    failwith
      (Printf.sprintf
         "mvcc bench: snapshot reads %.2fx worker reads at 4 shards (< 2x)"
         speedup4);
  (let tp r = mvcc_throughput (List.assoc r scaling) in
   if tp 4 < tp 1 then
     failwith "mvcc bench: snapshot reads do not scale with reader count");
  match json_file with
  | None -> ()
  | Some file ->
    let open Lvm_tools.Output_stream.Envelope in
    let point (r : Lvm_store.Workload.result) =
      Obj
        [ ("executed", Int r.Lvm_store.Workload.executed);
          ("reads", Int r.Lvm_store.Workload.reads);
          ("failed", Int r.Lvm_store.Workload.failed);
          ("wall_cycles", Int r.Lvm_store.Workload.wall_cycles);
          ("ops_per_kcycle", Float (mvcc_throughput r)) ]
    in
    let line =
      render ~kind:"mvcc"
        [ ("ops", Int txns); ("read_pct", Int 95); ("theta", Float 1.1);
          ("readers", Int readers);
          ("rows",
           List
             (List.map
                (fun (shards, w, s) ->
                  Obj
                    [ ("shards", Int shards); ("worker", point w);
                      ("snapshot", point s);
                      ("speedup",
                       Float (mvcc_throughput s /. mvcc_throughput w)) ])
                rows));
          ("reader_scaling",
           List
             (List.map
                (fun (readers, r) ->
                  Obj [ ("readers", Int readers); ("point", point r) ])
                scaling));
          ("speedup_at_4", Float speedup4) ]
    in
    let oc = open_out file in
    output_string oc line;
    output_char oc '\n';
    close_out oc;
    Printf.printf "mvcc matrix written to %s\n%!" file

(* {1 Entry point} *)

(* Write a single enveloped JSON metrics blob (counters + histograms
   merged across every machine the run created) to [file]. *)
let write_metrics file collector =
  Lvm_tools.Metrics.write_file ~label:"bench" ~file collector;
  Printf.printf "metrics written to %s\n%!" file

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let flag_value name =
    let rec go = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let metrics_file = flag_value "--metrics" in
  (* --cpus N parameterizes the multicpu micro-benchmark fixture. *)
  let cpus =
    match flag_value "--cpus" with Some v -> int_of_string v | None -> 4
  in
  let ppf = Format.std_formatter in
  if List.mem "--list" args then
    List.iter
      (fun e ->
        Printf.printf "%-14s %s\n" e.Lvm_experiments.Experiments.id
          e.Lvm_experiments.Experiments.description)
      Lvm_experiments.Experiments.all
  else if List.mem "--store" args then
    (* The store scaling leg alone (what generates BENCH_5.json). *)
    store_scaling_comparison ?json_file:(flag_value "--store-json") ppf
  else if List.mem "--fams" args then
    (* The FAMS three-way leg alone (what generates BENCH_6.json). *)
    fams_comparison ?json_file:(flag_value "--fams-json") ppf
  else if List.mem "--repl" args then
    (* The replication leg alone (what generates BENCH_7.json). *)
    repl_comparison ?json_file:(flag_value "--repl-json") ppf
  else if List.mem "--hotshard" args then
    (* The hot-shard matrix alone (what generates BENCH_8.json). *)
    hotshard_comparison ?json_file:(flag_value "--hotshard-json") ppf
  else if List.mem "--logdiet" args then
    (* The codec/coalescing matrix alone (what generates BENCH_9.json). *)
    logdiet_comparison ?json_file:(flag_value "--logdiet-json") ppf
  else if List.mem "--mvcc" args then
    (* The snapshot-read matrix alone (what generates BENCH_10.json). *)
    mvcc_comparison ?json_file:(flag_value "--mvcc-json") ppf
  else begin
    let (), collector =
      Lvm_obs.Collector.with_collector (fun () ->
          match flag_value "--only" with
          | Some id -> (
            match Lvm_experiments.Experiments.find id with
            | Some e -> e.Lvm_experiments.Experiments.run ~quick ppf
            | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
          | None ->
            Lvm_experiments.Experiments.run_all ~quick ppf;
            group_commit_comparison ppf;
            store_scaling_comparison ?json_file:(flag_value "--store-json")
              ppf;
            fams_comparison ?json_file:(flag_value "--fams-json") ppf;
            repl_comparison ?json_file:(flag_value "--repl-json") ppf;
            hotshard_comparison ?json_file:(flag_value "--hotshard-json") ppf;
            logdiet_comparison ?json_file:(flag_value "--logdiet-json") ppf;
            mvcc_comparison ?json_file:(flag_value "--mvcc-json") ppf)
    in
    Format.pp_print_flush ppf ();
    Option.iter (fun file -> write_metrics file collector) metrics_file;
    if not (List.mem "--no-bechamel" args) then run_bechamel ~cpus ()
  end
